//===-- Lower.h - AST semantic analysis and IR lowering --------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two-pass lowering from the MJ AST to the IR Program: pass 1 declares
/// classes, fields, and method signatures (allowing forward references);
/// pass 2 type-checks and lowers method bodies to three-address statements.
/// Constructors are synthesized per Java rules (super call, then field
/// initializers, then the user body); static field initializers go into a
/// per-class `<clinit>`.
///
//===----------------------------------------------------------------------===//

#ifndef LC_FRONTEND_LOWER_H
#define LC_FRONTEND_LOWER_H

#include "frontend/Ast.h"
#include "ir/IRBuilder.h"
#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lc {

/// Lowers \p Unit into \p P.
/// \returns true on success (no errors were reported).
bool lowerUnit(const ast::CompilationUnit &Unit, Program &P,
               DiagnosticEngine &Diags);

/// Convenience: lex + parse + lower a whole MJ source buffer. Also scans
/// the buffer into P.Decls so a later edit can be diffed incrementally.
/// \returns true on success.
bool compileSource(std::string_view Source, Program &P,
                   DiagnosticEngine &Diags);

// --- Incremental re-lowering across edits ---------------------------------

/// Scans raw MJ source into a per-declaration fingerprint index without
/// materializing tokens: comment- and string-aware, it segments classes
/// and members, hashes each member's signature and body bytes separately,
/// and records the byte span + start location needed to re-lex one member.
/// Any structure the scanner cannot confidently segment yields an invalid
/// index (the caller then takes the from-scratch path).
DeclIndex scanDeclarations(std::string_view Source);

/// How one matched method differs between two declaration scans.
enum class MethodEditKind : uint8_t {
  Unchanged,  ///< identical text at the identical position
  LocShifted, ///< identical text, start line shifted by LineDelta
  BodyChanged ///< same signature, different body bytes (re-lower it)
};

/// One method-level difference between two scans, naming the member by
/// position in the NEW index.
struct MethodEdit {
  size_t ClassIdx = 0;  ///< index into DeclIndex::Classes (new scan)
  size_t MemberIdx = 0; ///< index into DeclClass::Members (new scan)
  MethodEditKind Kind = MethodEditKind::Unchanged;
  int32_t LineDelta = 0; ///< LocShifted: new start line - old start line
};

/// Result of diffing two declaration indexes: the edit classification the
/// service reports, and whether the difference is small enough to patch a
/// compiled session in place (every difference is a body-level edit of a
/// non-constructor method, so ids, signatures and field layouts are
/// untouched).
struct ProgramDiff {
  bool Patchable = false;
  /// Body-changed and loc-shifted methods (empty when not patchable).
  std::vector<MethodEdit> Edits;
  // Classification counters over matched classes (diagnostic/stats).
  uint32_t MethodsUnchanged = 0;
  uint32_t MethodsBodyChanged = 0;
  uint32_t MethodsSigChanged = 0;
  uint32_t MethodsAdded = 0;
  uint32_t MethodsRemoved = 0;
  uint32_t MethodsLocShifted = 0;
};

/// Diffs two declaration scans (Old = the compiled session's index, New =
/// the incoming source's index).
ProgramDiff diffDeclarations(const DeclIndex &Old, const DeclIndex &New);

/// Applies a patchable \p Diff to \p P in place: re-lexes, re-parses and
/// re-lowers exactly the body-changed methods from \p NewSource, shifts
/// source locations of loc-shifted declarations, and renumbers allocation
/// sites and loops back to the dense from-scratch order (so every id in
/// the patched Program equals a clean compile of \p NewSource; only
/// string/type interning order may differ, which nothing renders).
/// On failure (a body edit that no longer compiles) returns false with
/// diagnostics in \p Diags; \p P is then in an unspecified state and must
/// be discarded. When \p ChangedMethods is non-null it receives a by-
/// MethodId mask of the re-lowered methods (the shape pta/PagRemap.h
/// consumes); unchanged on failure.
bool patchProgram(Program &P, std::string_view NewSource,
                  const DeclIndex &NewIndex, const ProgramDiff &Diff,
                  DiagnosticEngine &Diags,
                  std::vector<uint8_t> *ChangedMethods = nullptr);

/// Debug-build comparator: true when two Programs are equivalent at the
/// text level -- identical class/field/method/site/loop tables and bodies
/// with every dense id equal and every interned symbol/type resolving to
/// the same text (interner order itself may differ). On mismatch, \p Why
/// (when non-null) receives a short description of the first difference.
bool programsEquivalent(const Program &A, const Program &B,
                        std::string *Why = nullptr);

} // namespace lc

#endif // LC_FRONTEND_LOWER_H
