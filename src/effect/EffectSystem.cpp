//===-- EffectSystem.cpp --------------------------------------------------===//

#include "effect/EffectSystem.h"

#include "cfg/Dominators.h"
#include "support/Worklist.h"

#include <algorithm>
#include <sstream>

using namespace lc;

namespace {

/// Abstract value: a bounded set of (allocation site, ERA) objects, plus
/// an Any flag for unknown objects (call results, set overflow). This
/// refines the paper's single-type lattice -- where joining types with
/// different allocation sites collapses to the Any type T -- just enough
/// to keep store effects sound: a store of a joined value still records
/// one effect per member site. At the cap the set degrades to Any exactly
/// like the paper's T.
class AbsSet {
public:
  static constexpr size_t Cap = 24;

  static AbsSet bot() { return {}; }
  static AbsSet any() {
    AbsSet S;
    S.HasAny = true;
    return S;
  }
  static AbsSet obj(AllocSiteId Site, Era E) {
    AbsSet S;
    S.Objs.push_back({Site, E});
    return S;
  }

  bool isBot() const { return Objs.empty() && !HasAny; }
  bool hasAny() const { return HasAny; }
  const std::vector<std::pair<AllocSiteId, Era>> &objs() const {
    return Objs;
  }

  /// Joins \p O into this set. \returns true on change.
  bool joinWith(const AbsSet &O) {
    bool Changed = false;
    if (O.HasAny && !HasAny) {
      HasAny = true;
      Changed = true;
    }
    for (const auto &[Site, E] : O.Objs)
      Changed |= insert(Site, E);
    if (Objs.size() > Cap) {
      Objs.clear();
      HasAny = true;
      Changed = true;
    }
    return Changed;
  }

  /// Adds (\p Site, \p E), joining ERAs for an existing site.
  bool insert(AllocSiteId Site, Era E) {
    for (auto &[S, Old] : Objs) {
      if (S != Site)
        continue;
      Era J = join(Old, E);
      if (J == Old)
        return false;
      Old = J;
      return true;
    }
    Objs.push_back({Site, E});
    return true;
  }

  /// Replaces the era of \p Site if present (strong era update at loads).
  void setEra(AllocSiteId Site, Era E) {
    for (auto &[S, Old] : Objs)
      if (S == Site)
        Old = E;
  }

  void advanceAll() {
    for (auto &[S, E] : Objs)
      E = advance(E);
  }

  friend bool operator==(const AbsSet &A, const AbsSet &B) {
    return A.HasAny == B.HasAny && A.Objs == B.Objs;
  }

private:
  std::vector<std::pair<AllocSiteId, Era>> Objs;
  bool HasAny = false;
};

/// Abstract state at one program point: type environment Gamma plus type
/// heap H (slot per (base site, field)); AnyHeap[f] collects stores
/// through unknown bases.
struct AbsState {
  std::map<LocalId, AbsSet> Gamma;
  std::map<std::pair<AllocSiteId, FieldId>, AbsSet> Heap;
  std::map<FieldId, AbsSet> AnyHeap;

  AbsSet getVar(LocalId L) const {
    auto It = Gamma.find(L);
    return It == Gamma.end() ? AbsSet::bot() : It->second;
  }
  void setVar(LocalId L, AbsSet T) {
    if (T.isBot())
      Gamma.erase(L);
    else
      Gamma[L] = std::move(T);
  }

  bool joinWith(const AbsState &O) {
    bool Changed = false;
    auto JoinMap = [&Changed](auto &Mine, const auto &Theirs) {
      for (const auto &[K, V] : Theirs) {
        auto It = Mine.find(K);
        if (It == Mine.end()) {
          Mine.emplace(K, V);
          Changed = true;
        } else {
          Changed |= It->second.joinWith(V);
        }
      }
    };
    JoinMap(Gamma, O.Gamma);
    JoinMap(Heap, O.Heap);
    JoinMap(AnyHeap, O.AnyHeap);
    return Changed;
  }

  void advanceAll() {
    for (auto &[L, T] : Gamma)
      T.advanceAll();
    for (auto &[K, T] : Heap)
      T.advanceAll();
    for (auto &[F, T] : AnyHeap)
      T.advanceAll();
  }
};

class EffectInterpreter {
public:
  EffectInterpreter(const Program &P, LoopId Loop)
      : P(P), Loop(P.Loops[Loop]), LoopIdVal(Loop),
        Method(P.Loops[Loop].Method), G(P, Method) {}

  EffectSummary run() {
    const MethodInfo &MI = P.Methods[Method];
    std::vector<AbsState> In(G.numBlocks());
    std::vector<bool> Seen(G.numBlocks(), false);
    Seen[G.entry()] = true;

    Worklist<uint32_t> WL;
    WL.push(G.entry());
    while (!WL.empty()) {
      uint32_t B = WL.pop();
      if (G.blockOf(Loop.BodyBegin) == B)
        ++Summary.FixpointIters;
      AbsState S = In[B];
      for (StmtIdx I = G.block(B).Begin; I < G.block(B).End; ++I)
        transfer(S, MI.Body[I], I);
      bool EndsWithBackEdge =
          MI.Body[G.block(B).End - 1].Op == Opcode::Goto &&
          MI.Body[G.block(B).End - 1].Target == Loop.BodyBegin &&
          inLoop(G.block(B).End - 1);
      if (EndsWithBackEdge)
        ExitState.joinWith(S);
      // Regions are artificial loops (paper section 1): no CFG back edge,
      // so feed the region-end state back to the region head explicitly;
      // the IterBegin there applies the iteration advance.
      if (Loop.IsRegion && G.block(B).Begin < Loop.BodyEnd &&
          G.block(B).End >= Loop.BodyEnd) {
        ExitState.joinWith(S);
        uint32_t Head = G.blockOf(Loop.BodyBegin);
        if (In[Head].joinWith(S))
          WL.push(Head);
      }
      for (uint32_t Succ : G.block(B).Succs) {
        if (!Seen[Succ]) {
          Seen[Succ] = true;
          In[Succ] = S;
          WL.push(Succ);
        } else if (In[Succ].joinWith(S)) {
          WL.push(Succ);
        }
      }
    }

    summarize();
    return std::move(Summary);
  }

private:
  bool inLoop(StmtIdx I) const {
    return I >= Loop.BodyBegin && I < Loop.BodyEnd;
  }

  bool refLike(LocalId L) const {
    return P.Types.isRefLike(P.Methods[Method].Locals[L].Ty);
  }

  /// Reads the slots for base set \p BaseS, field \p F. Inside the loop a
  /// Top member observed at a load means "created in a previous iteration
  /// and now used": it becomes Future, written back into the concrete slot
  /// (strong era update).
  AbsSet loadSlot(AbsState &S, const AbsSet &BaseS, FieldId F, bool Inside) {
    AbsSet Out;
    auto ReadOne = [&](AbsSet *Slot, bool WriteBack) {
      if (!Slot)
        return;
      if (Inside && WriteBack)
        for (const auto &[Site, E] : Slot->objs())
          if (E == Era::Top)
            Slot->setEra(Site, Era::Future);
      AbsSet Tmp = *Slot;
      if (Inside && !WriteBack) {
        for (const auto &[Site, E] : Tmp.objs())
          if (E == Era::Top)
            Tmp.setEra(Site, Era::Future);
      }
      Out.joinWith(Tmp);
    };
    for (const auto &[BaseSite, BE] : BaseS.objs()) {
      auto It = S.Heap.find({BaseSite, F});
      ReadOne(It == S.Heap.end() ? nullptr : &It->second,
              /*WriteBack=*/true);
    }
    if (BaseS.hasAny()) {
      for (auto &[K, Slot] : S.Heap)
        if (K.second == F)
          ReadOne(&Slot, /*WriteBack=*/false);
    }
    auto AIt = S.AnyHeap.find(F);
    if (AIt != S.AnyHeap.end())
      ReadOne(&AIt->second, /*WriteBack=*/false);
    return Out;
  }

  void storeSlot(AbsState &S, const AbsSet &BaseS, FieldId F,
                 const AbsSet &Val) {
    if (Val.isBot())
      return; // null store: no strong update (documented imprecision)
    for (const auto &[BaseSite, BE] : BaseS.objs()) {
      auto [It, New] = S.Heap.try_emplace({BaseSite, F}, Val);
      if (!New)
        It->second.joinWith(Val); // weak update
    }
    if (BaseS.hasAny()) {
      auto [It, New] = S.AnyHeap.try_emplace(F, Val);
      if (!New)
        It->second.joinWith(Val);
    }
  }

  void recordEffects(std::set<AbsEffect> &Sink, const AbsSet &Val, FieldId F,
                     const AbsSet &BaseS) {
    auto RecordPair = [&](const AbsType &V, const AbsType &B) {
      Sink.insert({V, F, B});
    };
    auto EachVal = [&](const AbsType &B) {
      for (const auto &[Site, E] : Val.objs())
        RecordPair(AbsType::obj(Site, E), B);
      if (Val.hasAny())
        RecordPair(AbsType::any(), B);
    };
    for (const auto &[Site, E] : BaseS.objs())
      EachVal(AbsType::obj(Site, E));
    if (BaseS.hasAny())
      EachVal(AbsType::any());
  }

  void transfer(AbsState &S, const Stmt &St, StmtIdx I) {
    bool Inside = inLoop(I);
    switch (St.Op) {
    case Opcode::IterBegin:
      if (St.Loop == LoopIdVal)
        S.advanceAll();
      break;
    case Opcode::New:
    case Opcode::NewArray:
    case Opcode::ConstStr:
      S.setVar(St.Dst, AbsSet::obj(St.Site,
                                   Inside ? Era::Current : Era::Outside));
      break;
    case Opcode::ConstNull:
    case Opcode::ConstInt:
    case Opcode::ConstBool:
    case Opcode::BinOp:
    case Opcode::UnOp:
    case Opcode::ArrayLen:
      if (St.Dst != kInvalidId)
        S.setVar(St.Dst, AbsSet::bot());
      break;
    case Opcode::Copy:
    case Opcode::Cast:
      S.setVar(St.Dst, refLike(St.SrcA) ? S.getVar(St.SrcA) : AbsSet::bot());
      break;
    case Opcode::Load:
    case Opcode::ArrayLoad: {
      FieldId F = St.Op == Opcode::Load ? St.Field : P.ElemField;
      AbsSet BaseS = S.getVar(St.SrcA);
      AbsSet V = loadSlot(S, BaseS, F, Inside);
      if (Inside && !V.isBot() && !BaseS.isBot())
        recordEffects(Summary.Loads, V, F, BaseS);
      S.setVar(St.Dst, std::move(V));
      break;
    }
    case Opcode::Store:
    case Opcode::ArrayStore: {
      FieldId F = St.Op == Opcode::Store ? St.Field : P.ElemField;
      LocalId ValL = St.Op == Opcode::Store ? St.SrcB : St.SrcC;
      AbsSet BaseS = S.getVar(St.SrcA);
      AbsSet V = refLike(ValL) ? S.getVar(ValL) : AbsSet::bot();
      storeSlot(S, BaseS, F, V);
      if (Inside && !V.isBot() && !BaseS.isBot())
        recordEffects(Summary.Stores, V, F, BaseS);
      break;
    }
    case Opcode::StaticLoad: {
      // Statics are fields of one imaginary outside holder: model them as
      // Any-based slots keyed by field.
      AbsSet V = loadSlot(S, AbsSet::any(), St.Field, Inside);
      if (Inside && !V.isBot())
        recordEffects(Summary.Loads, V, St.Field, AbsSet::any());
      S.setVar(St.Dst, std::move(V));
      break;
    }
    case Opcode::StaticStore: {
      AbsSet V = refLike(St.SrcB) ? S.getVar(St.SrcB) : AbsSet::bot();
      storeSlot(S, AbsSet::any(), St.Field, V);
      if (Inside && !V.isBot())
        recordEffects(Summary.Stores, V, St.Field, AbsSet::any());
      break;
    }
    case Opcode::Invoke:
      // The formal fragment is call-free; calls degrade the result to Any.
      if (St.Dst != kInvalidId && refLike(St.Dst))
        S.setVar(St.Dst, AbsSet::any());
      break;
    default:
      break;
    }
  }

  /// True if \p Site is allocated inside the analyzed loop (the fragment
  /// is intraprocedural: same method, statement within the loop range).
  bool siteInside(AllocSiteId Site) const {
    const AllocSite &A = P.AllocSites[Site];
    return A.Method == Method && inLoop(A.Index);
  }

  /// Final per-site ERA. Heap occurrences decide: a site observed flowing
  /// back through some slot (a Future member surviving to the iteration
  /// end) is Future even if another slot holds it at Top -- the per-edge
  /// matching in the detector reports that other slot as the redundant
  /// reference (the Fig. 1 Order curr-vs-elem situation). A site with only
  /// Top occurrences in the heap never flows back. A site never reaching
  /// the heap keeps its environment era (Current for iteration-locals).
  void summarize() {
    std::set<AllocSiteId> Sites;
    auto NoteSet = [&](const AbsSet &T) {
      for (const auto &[Site, E] : T.objs())
        Sites.insert(Site);
    };
    for (const auto &[L, T] : ExitState.Gamma)
      NoteSet(T);
    for (const auto &[K, T] : ExitState.Heap) {
      NoteSet(T);
      Sites.insert(K.first);
    }
    for (const auto &[F, T] : ExitState.AnyHeap)
      NoteSet(T);
    auto NoteEffect = [&](const AbsEffect &E) {
      if (E.Value.isObj())
        Sites.insert(E.Value.Site);
      if (E.Base.isObj())
        Sites.insert(E.Base.Site);
    };
    for (const AbsEffect &E : Summary.Stores)
      NoteEffect(E);
    for (const AbsEffect &E : Summary.Loads)
      NoteEffect(E);

    for (AllocSiteId Site : Sites) {
      if (!siteInside(Site)) {
        Summary.SiteEra[Site] = Era::Outside;
        continue;
      }
      bool SlotFuture = false, SlotTop = false;
      auto Check = [&](const AbsSet &T) {
        for (const auto &[S2, E] : T.objs()) {
          if (S2 != Site)
            continue;
          SlotFuture |= E == Era::Future;
          SlotTop |= E == Era::Top;
        }
      };
      for (const auto &[K, T] : ExitState.Heap)
        Check(T);
      for (const auto &[F, T] : ExitState.AnyHeap)
        Check(T);
      if (SlotFuture) {
        Summary.SiteEra[Site] = Era::Future;
        continue;
      }
      if (SlotTop) {
        Summary.SiteEra[Site] = Era::Top;
        continue;
      }
      Era EnvEra = Era::Current;
      bool Found = false;
      for (const auto &[L, T] : ExitState.Gamma)
        for (const auto &[S2, E] : T.objs())
          if (S2 == Site) {
            EnvEra = Found ? join(EnvEra, E) : E;
            Found = true;
          }
      Summary.SiteEra[Site] = Found ? EnvEra : Era::Current;
    }
  }

  const Program &P;
  const LoopInfo &Loop;
  LoopId LoopIdVal;
  MethodId Method;
  Cfg G;
  EffectSummary Summary;
  AbsState ExitState;
};

} // namespace

EffectSummary lc::runEffectSystem(const Program &P, LoopId Loop) {
  return EffectInterpreter(P, Loop).run();
}

std::string EffectSummary::str(const Program &P) const {
  std::ostringstream OS;
  OS << "ERAs:\n";
  for (const auto &[S, E] : SiteEra)
    OS << "  " << P.allocSiteName(S) << " : " << eraName(E) << "\n";
  OS << "Stores:\n";
  for (const AbsEffect &E : Stores)
    OS << "  " << E.Value.str() << " >" << P.fieldName(E.Field) << " "
       << E.Base.str() << "\n";
  OS << "Loads:\n";
  for (const AbsEffect &E : Loads)
    OS << "  " << E.Value.str() << " <" << P.fieldName(E.Field) << " "
       << E.Base.str() << "\n";
  return OS.str();
}

std::vector<EffectLeak> lc::detectEffectLeaks(const Program &P,
                                              const EffectSummary &S) {
  (void)P;
  // Site-level store graph (value -> base, labeled field) and load graph,
  // from the abstract effects.
  struct Edge {
    AllocSiteId From, To;
    FieldId Field;
    bool ToOutside;
    bool ToAny;
  };
  auto IsOutside = [&](AllocSiteId Site) {
    return S.eraOf(Site) == Era::Outside;
  };

  std::vector<Edge> StoreEdges;
  for (const AbsEffect &E : S.Stores) {
    if (!E.Value.isObj())
      continue;
    if (E.Base.isAny()) {
      StoreEdges.push_back({E.Value.Site, kInvalidId, E.Field, true, true});
    } else if (E.Base.isObj()) {
      StoreEdges.push_back(
          {E.Value.Site, E.Base.Site, E.Field, IsOutside(E.Base.Site), false});
    }
  }

  // Transitive flows-out: inside site -> closest outside object.
  std::map<AllocSiteId, std::set<std::pair<FieldId, AllocSiteId>>> FlowsOut;
  for (const auto &[Site, E] : S.SiteEra) {
    if (E == Era::Outside)
      continue;
    std::set<AllocSiteId> Visited{Site};
    std::vector<AllocSiteId> Stack = {Site};
    while (!Stack.empty()) {
      AllocSiteId Cur = Stack.back();
      Stack.pop_back();
      for (const Edge &Ed : StoreEdges) {
        if (Ed.From != Cur)
          continue;
        if (Ed.ToOutside || Ed.ToAny) {
          FlowsOut[Site].insert({Ed.Field, Ed.ToAny ? kInvalidId : Ed.To});
        } else if (Visited.insert(Ed.To).second) {
          Stack.push_back(Ed.To);
        }
      }
    }
  }

  // Transitive flows-in: (insideSite, fieldOfOutside, outsideSite).
  std::set<std::tuple<AllocSiteId, FieldId, AllocSiteId>> FlowsIn;
  {
    std::vector<std::tuple<AllocSiteId, FieldId, AllocSiteId>> Work;
    for (const AbsEffect &E : S.Loads) {
      if (!E.Value.isObj() || IsOutside(E.Value.Site))
        continue;
      if (E.Base.isAny()) {
        Work.push_back({E.Value.Site, E.Field, kInvalidId});
      } else if (E.Base.isObj() && IsOutside(E.Base.Site)) {
        Work.push_back({E.Value.Site, E.Field, E.Base.Site});
      }
    }
    while (!Work.empty()) {
      auto [V, F, B] = Work.back();
      Work.pop_back();
      if (!FlowsIn.insert({V, F, B}).second)
        continue;
      for (const AbsEffect &E : S.Loads) {
        if (!E.Base.isObj() || E.Base.Site != V)
          continue;
        if (!E.Value.isObj() || IsOutside(E.Value.Site))
          continue;
        Work.push_back({E.Value.Site, F, B});
      }
    }
  }

  std::vector<EffectLeak> Leaks;
  for (const auto &[Site, FOuts] : FlowsOut) {
    Era E = S.eraOf(Site);
    if (E == Era::Top) {
      const auto &[F, B] = *FOuts.begin();
      Leaks.push_back({Site, F, B, /*EscapesWithoutFlowIn=*/true});
      continue;
    }
    for (const auto &[F, B] : FOuts) {
      if (FlowsIn.count({Site, F, B}))
        continue;
      Leaks.push_back({Site, F, B, /*EscapesWithoutFlowIn=*/false});
    }
  }
  return Leaks;
}
