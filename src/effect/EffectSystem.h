//===-- EffectSystem.h - Type and effect system of section 3 ---*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The formal type-and-effect system of the paper (Figs. 4-6), implemented
/// as an abstract interpreter over the intraprocedural while-language
/// fragment of the IR (assignments, new, field load/store, if/goto, one
/// analyzed loop). It computes:
///
///   - the ERA of every allocation site with respect to the analyzed loop,
///   - the abstract store effects  tau1 >_g tau2  (Psi-tilde), and
///   - the abstract load effects   tau1 <_g tau2  (Omega-tilde),
///
/// from which EffectLeakDetector applies Definitions 2-3: an inside object
/// leaks when its ERA is Top, or when it flows out through a field of an
/// outside object that is never matched by a flows-in on the same field
/// and outside object.
///
/// This module is the executable counterpart of the formalism; the
/// practical interprocedural analysis lives in src/leak and is validated
/// against this one (and against the concrete-semantics oracle in
/// src/interp) by the property tests.
///
//===----------------------------------------------------------------------===//

#ifndef LC_EFFECT_EFFECTSYSTEM_H
#define LC_EFFECT_EFFECTSYSTEM_H

#include "cfg/Cfg.h"
#include "effect/Era.h"
#include "ir/Program.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lc {

/// An abstract heap effect: the value type, the field, and the base type.
struct AbsEffect {
  AbsType Value;
  FieldId Field = kInvalidId;
  AbsType Base;

  friend bool operator<(const AbsEffect &A, const AbsEffect &B) {
    auto Key = [](const AbsType &T) {
      return std::tuple(static_cast<int>(T.K), T.Site, static_cast<int>(T.E));
    };
    return std::tuple(Key(A.Value), A.Field, Key(A.Base)) <
           std::tuple(Key(B.Value), B.Field, Key(B.Base));
  }
};

/// Result of running the effect system on one loop of one method.
struct EffectSummary {
  /// Final ERA per allocation site occurring in the method (join over all
  /// occurrences in the fixed-point state).
  std::map<AllocSiteId, Era> SiteEra;
  /// Abstract store effects (Psi-tilde).
  std::set<AbsEffect> Stores;
  /// Abstract load effects (Omega-tilde).
  std::set<AbsEffect> Loads;
  /// Abstract-iteration count until the loop fixed point converged.
  unsigned FixpointIters = 0;

  Era eraOf(AllocSiteId S) const {
    auto It = SiteEra.find(S);
    return It == SiteEra.end() ? Era::Current : It->second;
  }
  std::string str(const Program &P) const;
};

/// Runs the type-and-effect system on \p Loop (a LoopInfo id of \p P).
/// Only the enclosing method is analyzed (the formal fragment has no
/// calls; Invoke statements are treated as opaque: their reference results
/// become Any).
EffectSummary runEffectSystem(const Program &P, LoopId Loop);

/// A leak found by matching flows-out and flows-in relations (Defs. 2-3).
struct EffectLeak {
  AllocSiteId Site = kInvalidId;      ///< the leaking inside object
  FieldId Field = kInvalidId;         ///< field of the outside object
  AllocSiteId Outside = kInvalidId;   ///< closest outside object it escapes to
  bool EscapesWithoutFlowIn = false;  ///< true: ERA Top; false: unmatched edge
};

/// Applies Definitions 2-3 to an effect summary.
std::vector<EffectLeak> detectEffectLeaks(const Program &P,
                                          const EffectSummary &S);

} // namespace lc

#endif // LC_EFFECT_EFFECTSYSTEM_H
