//===-- Era.h - Extended recency abstraction lattice -----------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extended recency abstraction (ERA) of the paper, section 2/3: each
/// abstract object carries one of four values with respect to a checked
/// loop l:
///
///   Outside (0) -- created outside l
///   Current (c) -- iteration-local: dies before its creating iteration ends
///   Future  (f) -- may escape its iteration and flow back into a later one
///   Top     (T) -- may escape and is never used by a later iteration
///
/// plus the join (Fig. 6) and the iteration-advance operator + (rule (6)):
/// at the start of each abstract iteration every Current object becomes
/// Top ("created in a previous iteration, not yet seen flowing back").
///
//===----------------------------------------------------------------------===//

#ifndef LC_EFFECT_ERA_H
#define LC_EFFECT_ERA_H

#include "ir/Ids.h"

#include <cstdint>
#include <string>

namespace lc {

/// ERA lattice values.
enum class Era : uint8_t {
  Outside, ///< 0: allocated outside the loop
  Current, ///< c: iteration-local
  Future,  ///< f: escapes and flows back in
  Top,     ///< T: escapes and never flows back
};

/// Join on ERAs. Current < Future < Top; Outside joins only with itself
/// (a fixed allocation site is either inside or outside the loop, so a
/// mixed join is defensive and goes straight to Top).
inline Era join(Era A, Era B) {
  if (A == B)
    return A;
  if (A == Era::Outside || B == Era::Outside)
    return Era::Top;
  auto Rank = [](Era E) {
    return E == Era::Current ? 0 : E == Era::Future ? 1 : 2;
  };
  return Rank(A) >= Rank(B) ? A : B;
}

/// The iteration-advance operator (+): applied to every type in the
/// abstract state when a new iteration begins.
inline Era advance(Era E) {
  switch (E) {
  case Era::Outside:
    return Era::Outside;
  case Era::Current:
    return Era::Top; // existing instance now belongs to a previous iteration
  case Era::Future:
    return Era::Future;
  case Era::Top:
    return Era::Top;
  }
  return Era::Top;
}

inline const char *eraName(Era E) {
  switch (E) {
  case Era::Outside:
    return "0";
  case Era::Current:
    return "c";
  case Era::Future:
    return "f";
  case Era::Top:
    return "T";
  }
  return "?";
}

/// An abstract type: an allocation site qualified with an ERA, or the
/// lattice extremes Bot (no object / null) and Any (unknown type, the
/// result of joining types with different allocation sites).
struct AbsType {
  enum class Kind : uint8_t { Bot, Obj, Any };
  Kind K = Kind::Bot;
  AllocSiteId Site = kInvalidId;
  Era E = Era::Current;

  static AbsType bot() { return {}; }
  static AbsType any() { return {Kind::Any, kInvalidId, Era::Top}; }
  static AbsType obj(AllocSiteId S, Era E) { return {Kind::Obj, S, E}; }

  bool isBot() const { return K == Kind::Bot; }
  bool isAny() const { return K == Kind::Any; }
  bool isObj() const { return K == Kind::Obj; }

  friend bool operator==(const AbsType &A, const AbsType &B) {
    return A.K == B.K && A.Site == B.Site && A.E == B.E;
  }

  std::string str() const {
    if (isBot())
      return "_|_";
    if (isAny())
      return "T";
    return "(o" + std::to_string(Site) + "," + eraName(E) + ")";
  }
};

/// Type join (Fig. 6): same site joins ERAs; different sites lose track and
/// go to Any; Bot is the identity.
inline AbsType join(const AbsType &A, const AbsType &B) {
  if (A.isBot())
    return B;
  if (B.isBot())
    return A;
  if (A.isAny() || B.isAny())
    return AbsType::any();
  if (A.Site != B.Site)
    return AbsType::any();
  return AbsType::obj(A.Site, join(A.E, B.E));
}

/// Iteration advance lifted to types.
inline AbsType advance(const AbsType &T) {
  if (!T.isObj())
    return T;
  return AbsType::obj(T.Site, advance(T.E));
}

} // namespace lc

#endif // LC_EFFECT_ERA_H
