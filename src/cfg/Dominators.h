//===-- Dominators.h - Dominator tree --------------------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm
/// ("A Simple, Fast Dominance Algorithm"). Used by natural-loop detection.
///
//===----------------------------------------------------------------------===//

#ifndef LC_CFG_DOMINATORS_H
#define LC_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

namespace lc {

/// Immediate-dominator table for one CFG.
class DominatorTree {
public:
  explicit DominatorTree(const Cfg &G);

  /// Immediate dominator of \p Block; the entry's idom is itself.
  /// kInvalidId for blocks unreachable from the entry.
  uint32_t idom(uint32_t Block) const { return Idom[Block]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

private:
  const Cfg &G;
  std::vector<uint32_t> Idom;
  std::vector<uint32_t> RpoIndex;
};

} // namespace lc

#endif // LC_CFG_DOMINATORS_H
