//===-- LoopAnalysis.cpp --------------------------------------------------===//

#include "cfg/LoopAnalysis.h"

#include <algorithm>

using namespace lc;

LoopAnalysis::LoopAnalysis(const Cfg &G, const DominatorTree &DT) : G(G) {
  // A back edge T -> H exists when H dominates T; the natural loop of the
  // edge is H plus every block that reaches T without passing through H.
  for (uint32_t T = 0; T < G.numBlocks(); ++T) {
    for (uint32_t H : G.block(T).Succs) {
      if (!DT.dominates(H, T))
        continue;
      NaturalLoop L;
      L.Header = H;
      std::vector<bool> In(G.numBlocks(), false);
      In[H] = true;
      std::vector<uint32_t> Stack;
      if (!In[T]) {
        In[T] = true;
        Stack.push_back(T);
      }
      while (!Stack.empty()) {
        uint32_t B = Stack.back();
        Stack.pop_back();
        for (uint32_t P : G.block(B).Preds)
          if (!In[P]) {
            In[P] = true;
            Stack.push_back(P);
          }
      }
      for (uint32_t B = 0; B < G.numBlocks(); ++B)
        if (In[B])
          L.Blocks.push_back(B);
      // Merge loops sharing a header (multiple back edges).
      auto Existing =
          std::find_if(Loops.begin(), Loops.end(),
                       [&](const NaturalLoop &E) { return E.Header == H; });
      if (Existing == Loops.end()) {
        Loops.push_back(std::move(L));
      } else {
        std::vector<uint32_t> Merged;
        std::set_union(Existing->Blocks.begin(), Existing->Blocks.end(),
                       L.Blocks.begin(), L.Blocks.end(),
                       std::back_inserter(Merged));
        Existing->Blocks = std::move(Merged);
      }
    }
  }
}

uint32_t LoopAnalysis::innermostLoopOf(uint32_t Block) const {
  uint32_t Best = kInvalidId;
  size_t BestSize = 0;
  for (uint32_t I = 0; I < Loops.size(); ++I) {
    const NaturalLoop &L = Loops[I];
    if (!std::binary_search(L.Blocks.begin(), L.Blocks.end(), Block))
      continue;
    if (Best == kInvalidId || L.Blocks.size() < BestSize) {
      Best = I;
      BestSize = L.Blocks.size();
    }
  }
  return Best;
}

std::vector<StmtIdx> lc::loopStatements(const Program &P, LoopId L) {
  const LoopInfo &LI = P.Loops[L];
  std::vector<StmtIdx> Out;
  for (StmtIdx I = LI.BodyBegin; I < LI.BodyEnd; ++I)
    Out.push_back(I);
  return Out;
}
