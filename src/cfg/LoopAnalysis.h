//===-- LoopAnalysis.h - Natural loop detection ----------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection from back edges in the dominator tree, plus the
/// mapping from the frontend's recorded LoopInfo (labels/regions) to the
/// detected CFG loops. The leak analysis asks this module for the set of
/// statements belonging to a user-specified loop.
///
//===----------------------------------------------------------------------===//

#ifndef LC_CFG_LOOPANALYSIS_H
#define LC_CFG_LOOPANALYSIS_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <vector>

namespace lc {

/// One natural loop: header block plus the set of member blocks.
struct NaturalLoop {
  uint32_t Header = kInvalidId;
  std::vector<uint32_t> Blocks; ///< includes the header
};

/// Finds the natural loops of one method's CFG.
class LoopAnalysis {
public:
  LoopAnalysis(const Cfg &G, const DominatorTree &DT);

  const std::vector<NaturalLoop> &loops() const { return Loops; }

  /// Innermost natural loop containing \p Block; kInvalidId if none.
  /// (Smallest loop by block count.)
  uint32_t innermostLoopOf(uint32_t Block) const;

private:
  const Cfg &G;
  std::vector<NaturalLoop> Loops;
};

/// Statement index set of a frontend-recorded loop (a LoopInfo in the
/// Program): the lowered range [BodyBegin, BodyEnd). For while loops this
/// matches the natural loop discovered in the CFG; tests assert that.
std::vector<StmtIdx> loopStatements(const Program &P, LoopId L);

} // namespace lc

#endif // LC_CFG_LOOPANALYSIS_H
