//===-- Cfg.h - Control-flow graph -----------------------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-method control-flow graph over the flat statement vector: basic
/// blocks, successor/predecessor edges, and reverse postorder. Statement
/// granularity is preserved (each block stores its statement index range).
///
//===----------------------------------------------------------------------===//

#ifndef LC_CFG_CFG_H
#define LC_CFG_CFG_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace lc {

/// One basic block: the statements [Begin, End) of the method body.
struct BasicBlock {
  StmtIdx Begin = 0;
  StmtIdx End = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

/// CFG of one method.
class Cfg {
public:
  /// Builds the CFG of \p Method in \p P.
  Cfg(const Program &P, MethodId Method);

  MethodId method() const { return Method; }
  size_t numBlocks() const { return Blocks.size(); }
  const BasicBlock &block(uint32_t Id) const { return Blocks[Id]; }
  /// The entry block (always block 0, containing statement 0).
  uint32_t entry() const { return 0; }

  /// Block containing statement \p I.
  uint32_t blockOf(StmtIdx I) const { return BlockOfStmt[I]; }

  /// Block ids in reverse postorder from the entry (unreachable blocks
  /// appended at the end in index order).
  const std::vector<uint32_t> &reversePostorder() const { return Rpo; }

  /// Text rendering for tests/debugging.
  std::string str() const;

private:
  void build(const Program &P);
  void computeRpo();

  MethodId Method;
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> BlockOfStmt;
  std::vector<uint32_t> Rpo;
};

} // namespace lc

#endif // LC_CFG_CFG_H
