//===-- Cfg.cpp -----------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace lc;

Cfg::Cfg(const Program &P, MethodId Method) : Method(Method) {
  build(P);
  computeRpo();
}

void Cfg::build(const Program &P) {
  const MethodInfo &MI = P.Methods[Method];
  const std::vector<Stmt> &Body = MI.Body;
  assert(!Body.empty() && "CFG of an empty method");

  // 1. Find leaders: statement 0, branch targets, and branch/terminator
  //    successors.
  std::vector<bool> Leader(Body.size(), false);
  Leader[0] = true;
  for (StmtIdx I = 0; I < Body.size(); ++I) {
    const Stmt &S = Body[I];
    if (S.isBranch()) {
      Leader[S.Target] = true;
      if (I + 1 < Body.size())
        Leader[I + 1] = true;
    } else if (S.Op == Opcode::Return && I + 1 < Body.size()) {
      Leader[I + 1] = true;
    }
  }

  // 2. Carve blocks.
  BlockOfStmt.resize(Body.size());
  for (StmtIdx I = 0; I < Body.size(); ++I) {
    if (Leader[I]) {
      BasicBlock B;
      B.Begin = I;
      Blocks.push_back(B);
    }
    Blocks.back().End = I + 1;
    BlockOfStmt[I] = static_cast<uint32_t>(Blocks.size() - 1);
  }

  // 3. Edges.
  auto AddEdge = [&](uint32_t From, uint32_t To) {
    Blocks[From].Succs.push_back(To);
    Blocks[To].Preds.push_back(From);
  };
  for (uint32_t B = 0; B < Blocks.size(); ++B) {
    const Stmt &Last = Body[Blocks[B].End - 1];
    switch (Last.Op) {
    case Opcode::Goto:
      AddEdge(B, BlockOfStmt[Last.Target]);
      break;
    case Opcode::If:
      AddEdge(B, BlockOfStmt[Last.Target]);
      if (Blocks[B].End < Body.size())
        AddEdge(B, BlockOfStmt[Blocks[B].End]);
      break;
    case Opcode::Return:
      break;
    default:
      if (Blocks[B].End < Body.size())
        AddEdge(B, BlockOfStmt[Blocks[B].End]);
      break;
    }
  }
}

void Cfg::computeRpo() {
  std::vector<uint8_t> State(Blocks.size(), 0); // 0=unseen 1=onstack 2=done
  std::vector<uint32_t> Post;
  // Iterative DFS with explicit stack of (block, next-succ-index).
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.push_back({entry(), 0});
  State[entry()] = 1;
  while (!Stack.empty()) {
    auto &[B, Next] = Stack.back();
    if (Next < Blocks[B].Succs.size()) {
      uint32_t S = Blocks[B].Succs[Next++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      State[B] = 2;
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  // Unreachable blocks (dead code after returns, etc.) go last.
  for (uint32_t B = 0; B < Blocks.size(); ++B)
    if (State[B] == 0)
      Rpo.push_back(B);
}

std::string Cfg::str() const {
  std::ostringstream OS;
  for (uint32_t B = 0; B < Blocks.size(); ++B) {
    OS << "B" << B << " [" << Blocks[B].Begin << "," << Blocks[B].End
       << ") ->";
    for (uint32_t S : Blocks[B].Succs)
      OS << " B" << S;
    OS << "\n";
  }
  return OS.str();
}
