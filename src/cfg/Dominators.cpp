//===-- Dominators.cpp ----------------------------------------------------===//

#include "cfg/Dominators.h"

#include <cassert>

using namespace lc;

DominatorTree::DominatorTree(const Cfg &G) : G(G) {
  size_t N = G.numBlocks();
  Idom.assign(N, kInvalidId);
  RpoIndex.assign(N, kInvalidId);

  const std::vector<uint32_t> &Rpo = G.reversePostorder();
  // Only consider blocks reachable from the entry: they form the RPO prefix
  // computed by DFS; unreachable blocks keep RpoIndex == kInvalidId.
  std::vector<bool> Reachable(N, false);
  {
    std::vector<uint32_t> Stack = {G.entry()};
    Reachable[G.entry()] = true;
    while (!Stack.empty()) {
      uint32_t B = Stack.back();
      Stack.pop_back();
      for (uint32_t S : G.block(B).Succs)
        if (!Reachable[S]) {
          Reachable[S] = true;
          Stack.push_back(S);
        }
    }
  }
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    if (Reachable[Rpo[I]])
      RpoIndex[Rpo[I]] = I;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[G.entry()] = G.entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Rpo) {
      if (B == G.entry() || !Reachable[B])
        continue;
      uint32_t NewIdom = kInvalidId;
      for (uint32_t P : G.block(B).Preds) {
        if (Idom[P] == kInvalidId)
          continue; // pred not processed yet / unreachable
        NewIdom = NewIdom == kInvalidId ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != kInvalidId && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (Idom[B] == kInvalidId)
    return false; // B unreachable
  uint32_t Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    if (Cur == G.entry())
      return false;
    Cur = Idom[Cur];
  }
}
