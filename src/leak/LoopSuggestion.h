//===-- LoopSuggestion.h - rank loops worth checking -----------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing future-work item: "Approaches to identify
/// suspicious loops to be checked -- for example, using structural
/// information extracted from the code ... are also of significant
/// interest." This module ranks every loop/region of a program by the
/// structural signals that make the paper's leak pattern possible:
///
///   - allocation sites executed by an iteration (something must be
///     created to leak),
///   - heap stores in the iteration whose base may be an object created
///     outside the loop (an escape channel must exist),
///   - call fan-out of the body (event loops delegate into subsystems),
///
/// so a user without application knowledge can start from the top-ranked
/// candidates. Purely structural: no execution-frequency input.
///
//===----------------------------------------------------------------------===//

#ifndef LC_LEAK_LOOPSUGGESTION_H
#define LC_LEAK_LOOPSUGGESTION_H

#include "pta/Andersen.h"

#include <string>
#include <vector>

namespace lc {

/// One ranked candidate.
struct LoopCandidate {
  LoopId Loop = kInvalidId;
  double Score = 0;
  unsigned AllocSites = 0;    ///< allocation sites inside the loop region
  unsigned OutsideStores = 0; ///< stores whose base may be outside the loop
  unsigned Fanout = 0;        ///< methods reachable from the body
  bool IsRegion = false;
};

/// Ranks the loops of \p P (descending score). Unreachable loops score 0
/// and sort last. \p TopK truncates the result (0 = all).
std::vector<LoopCandidate> suggestLoops(const Program &P, const CallGraph &CG,
                                        const Pag &G, const AndersenPta &Base,
                                        unsigned TopK = 0);

/// Table rendering for CLI/bench output.
std::string renderSuggestions(const Program &P,
                              const std::vector<LoopCandidate> &Cs);

} // namespace lc

#endif // LC_LEAK_LOOPSUGGESTION_H
