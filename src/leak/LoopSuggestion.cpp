//===-- LoopSuggestion.cpp --------------------------------------------------===//

#include "leak/LoopSuggestion.h"

#include "support/Worklist.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace lc;

namespace {

/// Methods transitively callable from call sites in the body of \p L.
std::set<MethodId> insideMethodsOf(const Program &P, const CallGraph &CG,
                                   const LoopInfo &L) {
  std::set<MethodId> Inside;
  Worklist<MethodId> WL;
  for (StmtIdx I = L.BodyBegin; I < L.BodyEnd; ++I) {
    const Stmt &S = P.Methods[L.Method].Body[I];
    if (S.Op != Opcode::Invoke)
      continue;
    for (MethodId Callee : CG.calleesAt(L.Method, I))
      if (Inside.insert(Callee).second)
        WL.push(Callee);
  }
  while (!WL.empty()) {
    MethodId M = WL.pop();
    const MethodInfo &MI = P.Methods[M];
    for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
      if (MI.Body[I].Op != Opcode::Invoke)
        continue;
      for (MethodId Callee : CG.calleesAt(M, I))
        if (Inside.insert(Callee).second)
          WL.push(Callee);
    }
  }
  return Inside;
}

} // namespace

std::vector<LoopCandidate> lc::suggestLoops(const Program &P,
                                            const CallGraph &CG, const Pag &G,
                                            const AndersenPta &Base,
                                            unsigned TopK) {
  std::vector<LoopCandidate> Out;
  for (LoopId L = 0; L < P.Loops.size(); ++L) {
    const LoopInfo &LI = P.Loops[L];
    LoopCandidate C;
    C.Loop = L;
    C.IsRegion = LI.IsRegion;
    if (!CG.isReachable(LI.Method)) {
      Out.push_back(C);
      continue;
    }
    std::set<MethodId> Inside = insideMethodsOf(P, CG, LI);
    C.Fanout = static_cast<unsigned>(Inside.size());

    auto InRegion = [&](MethodId M, StmtIdx I) {
      if (M == LI.Method)
        return I >= LI.BodyBegin && I < LI.BodyEnd;
      return Inside.count(M) != 0;
    };

    // Inside allocation sites.
    std::set<AllocSiteId> InsideSites;
    for (AllocSiteId S = 0; S < P.AllocSites.size(); ++S)
      if (InRegion(P.AllocSites[S].Method, P.AllocSites[S].Index))
        InsideSites.insert(S);
    C.AllocSites = static_cast<unsigned>(InsideSites.size());

    // Stores in the region whose base may be an outside object (or a
    // static): escape channels. Bases in one collapsed SCC share a
    // points-to set, so the outside verdict is memoized per solver
    // representative (per candidate -- InsideSites differs between them).
    std::unordered_map<PagNodeId, bool> OutsideByRep;
    auto BaseEscapes = [&](PagNodeId N) {
      auto [It, New] = OutsideByRep.try_emplace(Base.repOf(N), false);
      if (New)
        Base.pointsTo(N).forEach([&](size_t Site) {
          It->second |= !InsideSites.count(static_cast<AllocSiteId>(Site));
        });
      return It->second;
    };
    auto CountStores = [&](MethodId M) {
      const MethodInfo &MI = P.Methods[M];
      for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
        if (!InRegion(M, I))
          continue;
        const Stmt &S = MI.Body[I];
        if (S.Op == Opcode::StaticStore) {
          ++C.OutsideStores;
          continue;
        }
        if (S.Op != Opcode::Store && S.Op != Opcode::ArrayStore)
          continue;
        C.OutsideStores += BaseEscapes(G.localNode(M, S.SrcA));
      }
    };
    CountStores(LI.Method);
    for (MethodId M : Inside)
      CountStores(M);

    // A leak needs both creation and an escape channel; weight escape
    // activity highest, then allocation richness, then delegation.
    C.Score = 4.0 * C.OutsideStores + 2.0 * C.AllocSites +
              std::log2(1.0 + C.Fanout);
    if (C.AllocSites == 0 || C.OutsideStores == 0)
      C.Score = 0; // pattern impossible
    Out.push_back(C);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const LoopCandidate &A, const LoopCandidate &B) {
                     return A.Score > B.Score;
                   });
  if (TopK && Out.size() > TopK)
    Out.resize(TopK);
  return Out;
}

std::string lc::renderSuggestions(const Program &P,
                                  const std::vector<LoopCandidate> &Cs) {
  std::ostringstream OS;
  OS << "rank score   allocs stores fanout  loop\n";
  unsigned Rank = 0;
  for (const LoopCandidate &C : Cs) {
    const LoopInfo &LI = P.Loops[C.Loop];
    OS << " " << ++Rank << "   ";
    OS.precision(1);
    OS << std::fixed << C.Score << "    " << C.AllocSites << "     "
       << C.OutsideStores << "      " << C.Fanout << "    "
       << (LI.IsRegion ? "region " : "loop ");
    if (!LI.Label.isEmpty())
      OS << "\"" << P.Strings.text(LI.Label) << "\" ";
    OS << "in " << P.qualifiedMethodName(LI.Method);
    SourceLoc Loc = P.Methods[LI.Method].Body[LI.BodyBegin].Loc;
    if (Loc.isValid())
      OS << ":" << Loc.Line;
    OS << "\n";
  }
  return OS.str();
}
