//===-- LeakAnalysis.h - Interprocedural LeakChecker analysis --*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The practical, interprocedural leak analysis of paper section 4. For a
/// user-specified loop (or region) it:
///
///   1. computes the *inside region*: the loop body plus every method
///      reachable from call sites in it, and enumerates context-sensitive
///      inside allocation sites (the LO column of Table 1);
///   2. classifies allocation sites as inside/outside; started Thread
///      objects can optionally be forced outside (the Mckoi workaround);
///   3. computes transitive flows-out: inside objects stored, possibly
///      through chains of inside objects, into a field g of a *closest*
///      outside object b (alias facts from the Andersen analysis);
///   4. computes flows-in: heap loads inside the loop that may retrieve
///      those objects from (b, g) and can observe a *previous* iteration's
///      value -- a load ordered after the only overwriting store observes
///      just the current iteration and does not count, while reads of
///      accumulating slots (array elem) always count; loads inside library
///      code count only when the value flows back to application code
///      (the HashMap.put rule);
///   5. reports each inside site with an unmatched flows-out edge: the
///      site, its calling contexts, the redundant reference (b.g), and
///      the escaping store statement. Pivot mode suppresses sites that
///      escape through another reported site (report roots only).
///
//===----------------------------------------------------------------------===//

#ifndef LC_LEAK_LEAKANALYSIS_H
#define LC_LEAK_LEAKANALYSIS_H

#include "effect/Era.h"
#include "pta/CflPta.h"
#include "support/Cancellation.h"
#include "support/Stats.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lc {

class EscapeAnalysis;
class ThreadPool;

/// Tuning for one leak-analysis run.
struct LeakOptions {
  /// Report only the roots of leaking structures (paper section 4).
  bool PivotMode = true;
  /// Treat started Thread objects as outside objects (Mckoi workaround,
  /// paper section 5.2).
  bool ModelThreads = false;
  /// Apply the stronger flows-in condition inside library classes
  /// (paper section 4, "Flow into Library Methods").
  bool LibraryRule = true;
  /// Report allocation sites that live in library code (container
  /// internals such as HashMap entries or ArrayList backing arrays).
  /// Off by default: the tool blames the application-level site, and
  /// library sites do not participate in pivot domination.
  bool ReportLibrarySites = false;
  /// Use context (call-string) enumeration for reported sites; off gives
  /// the context-insensitive ablation.
  bool ContextSensitive = true;
  /// The paper's named future-work refinement ("modeling of destructive
  /// updates"): suppress a flows-out edge when its target slot is provably
  /// overwritten on every iteration -- a single plain-field store, writing
  /// through a pointer with a unique target, executing unconditionally in
  /// its method and reached unconditionally from the loop body. The
  /// previous iteration's reference is then dead by the time it could
  /// matter. Off by default to match the paper's reported behaviour
  /// (overwritten-slot reports are its documented false positives).
  bool ModelDestructiveUpdates = false;
  /// Run the escape-analysis pre-pass and skip the per-site flows-out
  /// query for allocation sites it proves iteration-local (their ERA is
  /// `c` by construction, so they can never be reported). Reports are
  /// byte-identical with the filter on or off; the "cfl-queries-skipped"
  /// statistic counts the avoided queries.
  bool EscapePrefilter = true;
  /// Run per-site demand CFL queries (the paper's refinement machinery)
  /// against the flows-out/flows-in endpoints and aggregate their
  /// StatesVisited / fallback counts into Stats. The queries corroborate
  /// the Andersen-based matcher (counting edges the refinement would
  /// prune) but never change reports.
  bool CflCorroborate = true;
  /// Build the bottom-up method-summary table (pta/Summaries.h) with the
  /// substrate and let the CFL solver compose callee summaries at call
  /// sites instead of re-traversing callee bodies. Composition is exact:
  /// reports are byte-identical on or off; only the per-query state
  /// accounting (and therefore wall time) changes. Off gives the
  /// no-summaries ablation (`--no-summaries`).
  bool Summaries = true;
  /// Worker threads for the per-site query fan-out (flows-out walks,
  /// CFL corroboration, flows-in seeding). 0 = hardware_concurrency;
  /// 1 = run everything inline on the calling thread (the sequential
  /// path). Reports are byte-identical at any job count.
  uint32_t Jobs = 0;
  /// Max call depth when enumerating contexts of inside allocation sites.
  uint32_t ContextDepth = 8;
  /// Cap on contexts kept per allocation site.
  uint32_t MaxContextsPerSite = 64;
  CflOptions Cfl;
  /// Cooperative stop signal for this run (deadline, explicit cancel, or
  /// a deterministic poll budget). The default token never stops. The
  /// analysis polls it only at deterministic coordinator checkpoints --
  /// between phases and between fixed-size batches of per-site flows-out
  /// queries -- so the cut point (and therefore the partial result) is a
  /// pure function of the poll at which the token trips, independent of
  /// Jobs and thread schedule. Sites completed before the cut are still
  /// matched and reported; see LeakAnalysisResult::Partial.
  CancellationToken Cancel;
};

/// One context under which an inside allocation site is reached from the
/// loop: the chain of call sites from the loop body down to the
/// allocating method (empty = allocation directly in the body).
using SiteContext = std::vector<CallSite>;

/// One hop of a flows-out witness chain: the object from allocation site
/// \p From is stored into field \p Field of the object from site \p To by
/// the statement at (\p Method, \p Index). The last hop of a chain is the
/// report's redundant reference -- its (Field, To) is the `(g, b)` pair
/// the report blames.
struct WitnessHop {
  AllocSiteId From = kInvalidId;
  /// Target site; kInvalidId = the static/global holder.
  AllocSiteId To = kInvalidId;
  FieldId Field = kInvalidId;
  MethodId Method = kInvalidId;
  StmtIdx Index = kInvalidId;
};

/// Explainable provenance of one leak report: why the analysis believes
/// this site leaks. Rendered by `--explain` and embedded in the JSON run
/// report; every field is deterministic for a given input (schedule-,
/// jobs- and cache-warmth-independent).
struct LeakWitness {
  /// Matcher-side ERA of the site (Future: some other edge flows back;
  /// Top: nothing ever flows back).
  Era Verdict = Era::Top;
  /// The escape path: site -> (inside intermediates) -> outside holder.
  std::vector<WitnessHop> Path;
  /// Flows-in facts the matcher considered for the blamed `(g, b)` slot.
  uint64_t FlowsInFactsAtSlot = 0;   ///< any inside site retrieved from it
  uint64_t FlowsInFactsForSite = 0;  ///< ... retrieving this very site
  uint64_t FlowsInOrderRejected = 0; ///< ... rejected by the
                                     ///  previous-iteration ordering test
  /// Demand-CFL corroboration of the escaping store's value node (only
  /// populated when the corroboration pass ran).
  bool CflCorroborated = false;
  uint64_t CflStatesVisited = 0; ///< warmth-independent charged cost
  uint64_t CflNodeBudget = 0;    ///< the budget those states ran against
  bool CflFellBack = false;      ///< budget exhausted, Andersen fallback
  uint64_t CflRefutedSites = 0;  ///< Andersen pairs the refinement refuted
};

/// One reported leak.
struct LeakReport {
  AllocSiteId Site = kInvalidId;
  /// Calling contexts under which the site is inside the loop.
  std::vector<SiteContext> Contexts;
  /// The redundant reference: field of the outside object.
  FieldId Field = kInvalidId;
  /// Closest outside object the structure escapes to; kInvalidId when the
  /// sink is a static field (or an unknown outside holder).
  AllocSiteId Outside = kInvalidId;
  /// The heap store that lets the object escape.
  MethodId StoreMethod = kInvalidId;
  StmtIdx StoreIndex = kInvalidId;
  /// True when no flows-in exists at all for this site (ERA Top); false
  /// when only this edge is unmatched (ERA Future, redundant edge).
  bool NeverFlowsBack = false;
  /// Why: the evidence chain behind this report.
  LeakWitness Witness;
};

/// Result of analyzing one loop.
struct LeakAnalysisResult {
  LoopId Loop = kInvalidId;
  /// Context-sensitive inside allocation sites (Table 1's LO).
  uint64_t NumInsideCtxSites = 0;
  /// Context-insensitive count of inside allocation sites.
  uint64_t NumInsideSites = 0;
  /// Context-sensitive leaking allocation sites (Table 1's LS): total
  /// contexts over all reports.
  uint64_t NumLeakCtxSites = 0;
  std::vector<LeakReport> Reports;
  /// Matcher-side ERA of every inside allocation site: Current when no
  /// flows-out edge exists (or the escape pre-filter proved the site
  /// iteration-local), Future when the site escapes and some edge is
  /// matched by a flows-in, Top when it escapes and never flows back,
  /// Outside for started threads forced outside under thread modeling.
  /// Consumed by the --check-era cross-check; never rendered in reports.
  /// On partial runs only sites whose flows-out query actually ran have
  /// an entry.
  std::map<AllocSiteId, Era> SiteEras;
  /// True when the run's cancellation token stopped it before every
  /// per-site flows-out query ran. The first SitesCompleted sites (in
  /// ascending site order) were fully analyzed, matched, and reported;
  /// the rest were never attempted. A partial result is prefix-consistent:
  /// it is byte-identical to what any schedule produces when the token
  /// trips at the same checkpoint, and its reports are exactly the full
  /// run's reports restricted to the completed prefix (modulo pivot
  /// suppression by not-yet-analyzed sites and the skipped CFL
  /// corroboration pass).
  bool Partial = false;
  /// Why the token stopped the run (None for complete runs).
  StopReason Stopped = StopReason::None;
  /// Per-site flows-out queries completed / total inside sites, in
  /// ascending site order. Equal when the run completed.
  uint64_t SitesCompleted = 0;
  uint64_t SitesTotal = 0;
  Stats Statistics;

  bool reportsSite(AllocSiteId S) const {
    for (const LeakReport &R : Reports)
      if (R.Site == S)
        return true;
    return false;
  }
};

/// Runs the leak analysis for \p Loop of \p P. The caller provides the
/// shared substrate (call graph, PAG, Andersen, CFL) so that several loops
/// or option sets can reuse it. \p Esc optionally shares a prebuilt escape
/// analysis for the pre-filter; when null and the filter is enabled, one
/// is built for this run. \p Pool optionally shares a thread pool for the
/// per-site query fan-out; when null (or when its size disagrees with
/// Opts.Jobs), one is created for this run.
LeakAnalysisResult analyzeLoop(const Program &P, LoopId Loop,
                               const CallGraph &CG, const Pag &G,
                               const AndersenPta &Base, const CflPta &Cfl,
                               const LeakOptions &Opts = {},
                               const EscapeAnalysis *Esc = nullptr,
                               ThreadPool *Pool = nullptr);

/// Renders a human-readable report (what the tool prints for a case
/// study).
std::string renderLeakReport(const Program &P, const LeakAnalysisResult &R);

/// Renders the witness chains of \p R's reports (`--explain`): one block
/// per report naming the ERA verdict, the hop-by-hop flows-out path to
/// the blamed `(g, b)` pair, the flows-in facts considered, and the
/// demand-CFL corroboration of the escaping store. Deterministic for a
/// given input; empty string when there are no reports.
std::string renderLeakExplanations(const Program &P,
                                   const LeakAnalysisResult &R);

} // namespace lc

#endif // LC_LEAK_LEAKANALYSIS_H
