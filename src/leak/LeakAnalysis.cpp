//===-- LeakAnalysis.cpp --------------------------------------------------===//

#include "leak/LeakAnalysis.h"

#include "cfg/Dominators.h"
#include "escape/EscapeAnalysis.h"
#include "support/Arena.h"
#include "support/FlatMap.h"
#include "support/MemStats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "support/Worklist.h"

#include <memory>

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace lc;

namespace {

/// Pseudo allocation-site id for the holder of static fields: always an
/// outside object.
AllocSiteId globalsSite(const Program &P) {
  return static_cast<AllocSiteId>(P.AllocSites.size());
}

/// Per-site flows-out queries fanned out between two cancellation
/// checkpoints. Fixed (never derived from Jobs) so the checkpoint
/// sequence -- and therefore where a tripping token cuts the site list --
/// is identical at any job count.
constexpr size_t kSiteBatch = 64;

/// The per-run machinery.
class Analyzer {
public:
  Analyzer(const Program &P, LoopId Loop, const CallGraph &CG, const Pag &G,
           const AndersenPta &Base, const CflPta &Cfl,
           const LeakOptions &Opts, const EscapeAnalysis *Esc,
           ThreadPool *SharedPool)
      : P(P), LoopIdVal(Loop), Loop(P.Loops[Loop]), CG(CG), G(G), Base(Base),
        Cfl(Cfl), Opts(Opts), Esc(Esc) {
    unsigned Jobs =
        Opts.Jobs == 0 ? ThreadPool::defaultJobs() : Opts.Jobs;
    if (SharedPool && SharedPool->jobs() == Jobs) {
      Pool = SharedPool;
    } else {
      OwnedPool = std::make_unique<ThreadPool>(Jobs);
      Pool = OwnedPool.get();
    }
  }

  LeakAnalysisResult run() {
    Result.Loop = LoopIdVal;
    // Worker count is an environment fact, not an analysis result: it must
    // not participate in the byte-identical comparison across job counts.
    Result.Statistics.setGauge("jobs", Pool->jobs());
    // Scoped block: the timer must record before Result is moved out of
    // the Analyzer below, or the sample lands in the moved-from bag.
    {
      ScopedTimer T(Result.Statistics, "leak-analysis");
      runPhases();
    }
    return std::move(Result);
  }

private:
  /// Coordinator checkpoint: polls the run's cancellation token and, on
  /// the first trip, records why the run is partial. Only ever called on
  /// the coordinating thread at deterministic points, so every schedule
  /// observes the same checkpoint sequence.
  bool stopped() {
    if (!Opts.Cancel.poll())
      return false;
    Result.Partial = true;
    Result.Stopped = Opts.Cancel.reason();
    return true;
  }

  /// Records the heap-allocation count of one phase as an Environment
  /// counter (`mem-allocs-<phase>`) when the counting allocator is linked.
  /// The per-phase splits are the map for memory tuning; like all
  /// Environment metrics they never enter the stable report section.
  struct PhaseAllocs {
    MetricsRegistry &Stats;
    const char *Name;
    uint64_t Before;
    PhaseAllocs(MetricsRegistry &Stats, const char *Name)
        : Stats(Stats), Name(Name), Before(mem::heapAllocs()) {}
    ~PhaseAllocs() {
      if (mem::heapAllocsAvailable())
        Stats.addCounter(Name, mem::heapAllocs() - Before,
                         MetricDet::Environment);
    }
  };

  void runPhases() {
    // A deadline that expired before the request even started trips here:
    // the outcome carries zero attempted sites on every schedule.
    if (stopped())
      return;
    {
      trace::TraceSpan Span("leak.inside-region", "leak");
      PhaseAllocs A(Result.Statistics, "mem-allocs-inside-region");
      computeInsideRegion();
      Span.arg("sites", Result.NumInsideSites);
    }
    Result.SitesTotal = InsideSites.size();
    if (stopped())
      return;
    {
      trace::TraceSpan Span("leak.thread-sites", "leak");
      classifyThreadSites();
    }
    {
      trace::TraceSpan Span("leak.escape-filter", "leak");
      PhaseAllocs A(Result.Statistics, "mem-allocs-escape-filter");
      computeEscapeFilter();
    }
    {
      trace::TraceSpan Span("leak.heap-accesses", "leak");
      PhaseAllocs A(Result.Statistics, "mem-allocs-heap-accesses");
      collectHeapAccesses();
    }
    if (stopped())
      return;
    {
      trace::TraceSpan Span("leak.flows-out", "leak");
      ScopedTimer T2(Result.Statistics, "leak-flows-out");
      PhaseAllocs A(Result.Statistics, "mem-allocs-flows-out");
      computeFlowsOut();
      Span.arg("sites", FlowsOut.size());
    }
    // Sites completed before a mid-fan-out cut are still matched and
    // reported below; only the stats-only corroboration pass is dropped
    // for partial runs (a deadline that already fired must not fund a
    // fleet of CFL queries that change no report).
    if (!Result.Partial && !stopped()) {
      trace::TraceSpan Span("leak.cfl-corroborate", "leak");
      PhaseAllocs A(Result.Statistics, "mem-allocs-cfl-corroborate");
      corroborateWithCfl();
    }
    {
      trace::TraceSpan Span("leak.flows-in", "leak");
      ScopedTimer T2(Result.Statistics, "leak-flows-in");
      PhaseAllocs A(Result.Statistics, "mem-allocs-flows-in");
      computeFlowsIn();
    }
    {
      trace::TraceSpan Span("leak.match", "leak");
      ScopedTimer T2(Result.Statistics, "leak-match");
      PhaseAllocs A(Result.Statistics, "mem-allocs-match");
      match();
      Span.arg("reports", Result.Reports.size());
    }
  }

  // --- Step 1: inside region + context enumeration -------------------------

  bool inBodyRange(MethodId M, StmtIdx I) const {
    return M == Loop.Method && I >= Loop.BodyBegin && I < Loop.BodyEnd;
  }

  void computeInsideRegion() {
    // Methods transitively callable from call sites inside the loop body.
    Worklist<MethodId> WL;
    for (StmtIdx I = Loop.BodyBegin; I < Loop.BodyEnd; ++I) {
      const Stmt &S = P.Methods[Loop.Method].Body[I];
      if (S.Op != Opcode::Invoke)
        continue;
      for (MethodId Callee : CG.calleesAt(Loop.Method, I))
        if (InsideMethods.insert(Callee).second)
          WL.push(Callee);
    }
    while (!WL.empty()) {
      MethodId M = WL.pop();
      const MethodInfo &MI = P.Methods[M];
      for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
        if (MI.Body[I].Op != Opcode::Invoke)
          continue;
        for (MethodId Callee : CG.calleesAt(M, I))
          if (InsideMethods.insert(Callee).second)
            WL.push(Callee);
      }
    }

    // Inside allocation sites: in the body range, or in inside methods.
    for (AllocSiteId S = 0; S < P.AllocSites.size(); ++S) {
      const AllocSite &A = P.AllocSites[S];
      if (inBodyRange(A.Method, A.Index) || InsideMethods.count(A.Method))
        InsideSites.insert(S);
    }
    Result.NumInsideSites = InsideSites.size();

    enumerateContexts();
  }

  /// DFS over the call graph from the loop body, collecting the call-site
  /// chains under which each inside method is reached. Depth- and
  /// count-limited; recursion is cut by keeping each method at most once
  /// per path.
  void enumerateContexts() {
    std::vector<CallSite> Path;
    std::set<MethodId> OnPath;

    // Sites directly in the body: one empty context each.
    for (AllocSiteId S : InsideSites)
      if (inBodyRange(P.AllocSites[S].Method, P.AllocSites[S].Index))
        SiteContexts[S].push_back({});

    auto Descend = [&](auto &&Self, MethodId M) -> void {
      if (Path.size() >= Opts.ContextDepth)
        return;
      const MethodInfo &MI = P.Methods[M];
      // Record contexts for this method's allocation sites.
      for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
        const Stmt &S = MI.Body[I];
        if (S.isAllocation()) {
          auto &Ctxs = SiteContexts[S.Site];
          if (Ctxs.size() < Opts.MaxContextsPerSite)
            Ctxs.push_back(Path);
          else
            Result.Statistics.add("contexts-capped");
        }
        if (S.Op != Opcode::Invoke)
          continue;
        for (MethodId Callee : CG.calleesAt(M, I)) {
          if (OnPath.count(Callee))
            continue;
          Path.push_back({M, I});
          OnPath.insert(Callee);
          Self(Self, Callee);
          OnPath.erase(Callee);
          Path.pop_back();
        }
      }
    };

    for (StmtIdx I = Loop.BodyBegin; I < Loop.BodyEnd; ++I) {
      const Stmt &S = P.Methods[Loop.Method].Body[I];
      if (S.Op != Opcode::Invoke)
        continue;
      for (MethodId Callee : CG.calleesAt(Loop.Method, I)) {
        Path.push_back({Loop.Method, I});
        OnPath.insert(Callee);
        Descend(Descend, Callee);
        OnPath.erase(Callee);
        Path.pop_back();
      }
    }

    if (!Opts.ContextSensitive) {
      // Ablation: one context per site.
      for (auto &[S, Ctxs] : SiteContexts)
        if (!Ctxs.empty())
          Ctxs.resize(1);
    }
    for (AllocSiteId S : InsideSites)
      Result.NumInsideCtxSites +=
          std::max<size_t>(1, SiteContexts[S].size());
  }

  // --- Step 2: thread modeling ------------------------------------------------

  void classifyThreadSites() {
    if (!Opts.ModelThreads)
      return;
    // A site is a started thread if (a) its class extends Thread and
    // (b) some reachable call site invoking start() may have it as the
    // receiver.
    MethodId Start = P.findMethodIn(P.ThreadClass, "start");
    if (Start == kInvalidId)
      return;
    for (MethodId M = 0; M < P.Methods.size(); ++M) {
      if (!CG.isReachable(M))
        continue;
      const MethodInfo &MI = P.Methods[M];
      for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
        const Stmt &S = MI.Body[I];
        if (S.Op != Opcode::Invoke || S.SrcA == kInvalidId)
          continue;
        bool CallsStart = false;
        for (MethodId Callee : CG.calleesAt(M, I))
          CallsStart |= Callee == Start;
        if (!CallsStart)
          continue;
        Base.pointsTo(M, S.SrcA).forEach([&](size_t Site) {
          StartedThreads.insert(static_cast<AllocSiteId>(Site));
        });
      }
    }
    Result.Statistics.add("started-thread-sites", StartedThreads.size());
  }

  // --- Step 2b: escape pre-filter -------------------------------------------

  /// Sites the escape analysis proves iteration-local can have no
  /// flows-out edge: their per-site query is skipped and their ERA is
  /// Current by construction. Keeping the skip at query granularity (the
  /// store graph itself is still built) makes the reports provably
  /// byte-identical with the filter off.
  void computeEscapeFilter() {
    if (!Opts.EscapePrefilter)
      return;
    if (!Esc) {
      OwnedEsc = std::make_unique<EscapeAnalysis>(P, CG);
      Esc = OwnedEsc.get();
    }
    Captured = Esc->iterationLocal(LoopIdVal, InsideMethods);
    Result.Statistics.add("escape-captured-sites", Captured.count());
  }

  /// Outside = not an inside site, or a started thread (when modeled).
  bool isOutsideSite(AllocSiteId S) const {
    if (S == globalsSite(P))
      return true;
    if (StartedThreads.count(S))
      return true;
    return !InsideSites.count(S);
  }
  bool isInsideSite(AllocSiteId S) const {
    return InsideSites.count(S) && !StartedThreads.count(S);
  }

  // --- Step 3: heap accesses relevant to the loop ---------------------------

  /// A store/load statement with its "anchor": the loop-body statement
  /// index through which it executes (its own index if directly in the
  /// body, else the indices of body call sites whose callee closure
  /// contains it).
  struct Access {
    MethodId Method;
    StmtIdx Index;
    FieldId Field;
    PagNodeId Base;  ///< kInvalidId for statics
    PagNodeId Value; ///< stored value / loaded destination
    bool IsStatic;
  };

  /// Borrowed view of an access's anchor indices; aliases either the
  /// access itself (in-body: the anchor is its own statement index) or
  /// the per-method cache, so accesses own no anchor storage at all.
  struct AnchorSpan {
    const StmtIdx *First;
    size_t Num;
    const StmtIdx *begin() const { return First; }
    const StmtIdx *end() const { return First + Num; }
  };
  AnchorSpan anchorsFor(const Access &A) {
    if (inBodyRange(A.Method, A.Index))
      return {&A.Index, 1};
    const std::vector<StmtIdx> &V = methodAnchors(A.Method);
    return {V.data(), V.size()};
  }

  /// Anchors of out-of-body statements of \p M: the body call sites whose
  /// callee closure reaches M. Computed on first use per method; the
  /// mapped vectors are address-stable (node-based map), which AnchorSpan
  /// relies on.
  const std::vector<StmtIdx> &methodAnchors(MethodId M) {
    auto It = MethodAnchors.find(M);
    if (It != MethodAnchors.end())
      return It->second;
    std::vector<StmtIdx> Out;
    for (StmtIdx B = Loop.BodyBegin; B < Loop.BodyEnd; ++B) {
      const Stmt &S = P.Methods[Loop.Method].Body[B];
      if (S.Op != Opcode::Invoke)
        continue;
      for (MethodId Callee : CG.calleesAt(Loop.Method, B)) {
        if (Callee == M || calleeClosureContains(Callee, M)) {
          Out.push_back(B);
          break;
        }
      }
    }
    return MethodAnchors.emplace(M, std::move(Out)).first->second;
  }

  bool calleeClosureContains(MethodId From, MethodId Target) {
    auto Key = From;
    auto It = ClosureCache.find(Key);
    if (It == ClosureCache.end()) {
      std::set<MethodId> Seen;
      Worklist<MethodId> WL;
      WL.push(From);
      Seen.insert(From);
      while (!WL.empty()) {
        MethodId M = WL.pop();
        const MethodInfo &MI = P.Methods[M];
        for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
          if (MI.Body[I].Op != Opcode::Invoke)
            continue;
          for (MethodId Callee : CG.calleesAt(M, I))
            if (Seen.insert(Callee).second)
              WL.push(Callee);
        }
      }
      It = ClosureCache.emplace(Key, std::move(Seen)).first;
    }
    return It->second.count(Target) != 0;
  }

  bool stmtInsideLoop(MethodId M, StmtIdx I) const {
    return inBodyRange(M, I) || InsideMethods.count(M);
  }

  void collectHeapAccesses() {
    auto Consider = [&](MethodId M) {
      const MethodInfo &MI = P.Methods[M];
      for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
        const Stmt &S = MI.Body[I];
        switch (S.Op) {
        case Opcode::Store:
          Stores.push_back({M, I, S.Field, G.localNode(M, S.SrcA),
                            G.localNode(M, S.SrcB), false});
          break;
        case Opcode::ArrayStore:
          Stores.push_back({M, I, P.ElemField, G.localNode(M, S.SrcA),
                            G.localNode(M, S.SrcC), false});
          break;
        case Opcode::StaticStore:
          Stores.push_back(
              {M, I, S.Field, kInvalidId, G.localNode(M, S.SrcB), true});
          break;
        case Opcode::Load:
          Loads.push_back({M, I, S.Field, G.localNode(M, S.SrcA),
                           G.localNode(M, S.Dst), false});
          break;
        case Opcode::ArrayLoad:
          Loads.push_back({M, I, P.ElemField, G.localNode(M, S.SrcA),
                           G.localNode(M, S.Dst), false});
          break;
        case Opcode::StaticLoad:
          Loads.push_back(
              {M, I, S.Field, kInvalidId, G.localNode(M, S.Dst), true});
          break;
        default:
          break;
        }
      }
    };
    // Only accesses executing inside an iteration matter. Visit the loop
    // method merged into the (sorted) inside set at its ordered position,
    // without materializing the union.
    bool SawLoopMethod = false;
    for (MethodId M : InsideMethods) {
      if (!SawLoopMethod && Loop.Method < M) {
        Consider(Loop.Method);
        SawLoopMethod = true;
      }
      Consider(M);
      if (M == Loop.Method)
        SawLoopMethod = true;
    }
    if (!SawLoopMethod)
      Consider(Loop.Method);
    // Drop accesses of the loop method outside the body range.
    auto Filter = [&](std::vector<Access> &V) {
      V.erase(std::remove_if(V.begin(), V.end(),
                             [&](const Access &A) {
                               return !stmtInsideLoop(A.Method, A.Index);
                             }),
              V.end());
    };
    Filter(Stores);
    Filter(Loads);
    Result.Statistics.add("inside-stores", Stores.size());
    Result.Statistics.add("inside-loads", Loads.size());
  }

  // --- Step 4: transitive flows-out -----------------------------------------

  /// Site-level store edge: Value-site stored into Base-site.
  struct SiteEdge {
    AllocSiteId From, To;
    FieldId Field;
    const Access *Source;
  };

  void computeFlowsOut() {
    // Site-level store edges from the inside stores.
    for (const Access &A : Stores) {
      BitSet ValSites = A.IsStatic ? Base.pointsTo(A.Value)
                                   : Base.pointsTo(A.Value);
      if (A.IsStatic) {
        ValSites.forEach([&](size_t V) {
          StoreGraph.push_back({static_cast<AllocSiteId>(V), globalsSite(P),
                                A.Field, &A});
        });
        continue;
      }
      const BitSet &Bases = Base.pointsTo(A.Base);
      ValSites.forEach([&](size_t V) {
        Bases.forEach([&](size_t B) {
          StoreGraph.push_back({static_cast<AllocSiteId>(V),
                                static_cast<AllocSiteId>(B), A.Field, &A});
        });
      });
    }

    // Store-graph edges indexed by source site, preserving StoreGraph
    // order so per-site walks see edges in the same order a linear scan
    // would.
    std::unordered_map<AllocSiteId, std::vector<uint32_t>> EdgesFrom;
    for (uint32_t I = 0; I < StoreGraph.size(); ++I)
      EdgesFrom[StoreGraph[I].From].push_back(I);

    // For each inside site: DFS through inside intermediates to the
    // closest outside objects. The walks are independent, so they fan out
    // across the pool; each writes only its own indexed slot and the
    // merge below runs in ascending site order, keeping every downstream
    // structure (and therefore the reports) byte-identical to a
    // sequential run.
    //
    // The fan-out proceeds in fixed-size batches in ascending site order,
    // polling the run's cancellation token between batches on the
    // coordinating thread. A token that trips between batches cuts the
    // analysis at a site boundary that is the same at any job count, so
    // partial results are prefix-consistent and reproducible; the sites of
    // completed batches still flow through matching and reporting.
    std::vector<AllocSiteId> SiteList(InsideSites.begin(), InsideSites.end());
    struct SiteFlow {
      bool Skipped = false;
      std::vector<const SiteEdge *> Edges;
      std::set<AllocSiteId> Through;
      /// Discovery edge of each inside intermediate (witness paths walk
      /// these back from an escaping edge's source to the root site).
      std::map<AllocSiteId, const SiteEdge *> Parent;
    };
    std::vector<SiteFlow> Flows(SiteList.size());
    auto RunSite = [&](size_t I) {
      AllocSiteId S = SiteList[I];
      SiteFlow &F = Flows[I];
      if (Captured.test(S) && isInsideSite(S)) {
        // Iteration-local by the escape pre-pass: the DFS would find no
        // edge rooted at S, so skip the query outright.
        F.Skipped = true;
        return;
      }
      std::set<AllocSiteId> Visited{S};
      std::vector<AllocSiteId> Stack{S};
      while (!Stack.empty()) {
        AllocSiteId Cur = Stack.back();
        Stack.pop_back();
        auto EIt = EdgesFrom.find(Cur);
        if (EIt == EdgesFrom.end())
          continue;
        for (uint32_t Id : EIt->second) {
          const SiteEdge &E = StoreGraph[Id];
          if (isOutsideSite(E.To)) {
            F.Edges.push_back(&E);
          } else if (Visited.insert(E.To).second) {
            F.Through.insert(E.To);
            F.Parent[E.To] = &E;
            Stack.push_back(E.To);
          }
        }
      }
    };
    size_t Done = 0;
    while (Done < SiteList.size()) {
      if (stopped())
        break;
      size_t End = std::min(Done + kSiteBatch, SiteList.size());
      Pool->parallelFor(End - Done,
                        [&](size_t I) { RunSite(Done + I); });
      Done = End;
    }
    Result.SitesCompleted = Done;
    if (Done < SiteList.size()) {
      // Sites the cut skipped were never analyzed: the matcher must not
      // classify them (no flows-out is not the same as not attempted).
      Unattempted.insert(SiteList.begin() + Done, SiteList.end());
      Result.Statistics.add("cancel-skipped-sites",
                            SiteList.size() - Done);
    }
    for (size_t I = 0; I < Done; ++I) {
      AllocSiteId S = SiteList[I];
      SiteFlow &F = Flows[I];
      if (F.Skipped) {
        Result.SiteEras[S] = Era::Current;
        Result.Statistics.add("cfl-queries-skipped");
        continue;
      }
      if (!F.Edges.empty())
        FlowsOut[S] = std::move(F.Edges);
      if (!F.Through.empty())
        Through[S] = std::move(F.Through);
      if (!F.Parent.empty())
        ParentEdges[S] = std::move(F.Parent);
    }
    Result.Statistics.add("sites-with-flows-out", FlowsOut.size());
  }

  // --- Step 4b: demand CFL corroboration ------------------------------------

  /// Fans one demand CFL query per distinct flows-out/flows-in endpoint
  /// (the value node of every inside store and load) across the pool.
  /// The queries exercise the paper's refinement machinery against the
  /// run's own endpoints: their aggregate work (states visited, budget
  /// fallbacks) and the number of Andersen value/site pairs the
  /// context-sensitive answer refutes land in Stats. Reports never
  /// depend on this step, so it is byte-identical-safe at any job count.
  void corroborateWithCfl() {
    if (!Opts.CflCorroborate)
      return;
    ScopedTimer T(Result.Statistics, "cfl-corroboration");
    std::vector<PagNodeId> Nodes;
    Nodes.reserve(Stores.size() + Loads.size());
    for (const Access &A : Stores)
      Nodes.push_back(A.Value);
    for (const Access &A : Loads)
      Nodes.push_back(A.Value);
    std::sort(Nodes.begin(), Nodes.end());
    Nodes.erase(std::unique(Nodes.begin(), Nodes.end()), Nodes.end());

    std::vector<CflQueryOut> Out(Nodes.size());
    CflCacheStats CacheBefore = Cfl.cacheStats();
    CflSummaryStats SumBefore = Cfl.summaryStats();
    Pool->parallelFor(Nodes.size(), [&](size_t I) {
      // Cancel-aware: an asynchronous cancel() mid-fan-out makes each
      // in-flight query bail to its Andersen fallback (stats-only pass,
      // reports never depend on it).
      // Sites-only projection: corroboration never reads contexts (report
      // contexts come from the call-graph walk), so skip copying them.
      // The result scratch is thread-local so the sites buffer's capacity
      // is reused across the whole fan-out: queries past the first few
      // allocate nothing here.
      static thread_local CflSitesResult R;
      Cfl.pointsToSites(Nodes[I], &Opts.Cancel, R);
      Out[I].States = R.StatesVisited;
      Out[I].FellBack = R.FellBack;
      if (R.FellBack)
        return; // fallback answers are the Andersen set; nothing refuted
      // Membership by sorted scan instead of a per-query hash set; the
      // sites' order is irrelevant once the query returned.
      std::sort(R.Sites.begin(), R.Sites.end());
      Base.pointsTo(Nodes[I]).forEach([&](size_t S) {
        if (!std::binary_search(R.Sites.begin(), R.Sites.end(),
                                static_cast<AllocSiteId>(S)))
          ++Out[I].Refuted;
      });
    });
    CflCacheStats CacheAfter = Cfl.cacheStats();

    uint64_t States = 0, Fallbacks = 0, Refuted = 0;
    for (size_t I = 0; I < Nodes.size(); ++I) {
      States += Out[I].States;
      Fallbacks += Out[I].FellBack;
      Refuted += Out[I].Refuted;
      // Witness lookup: per-node outcomes are warmth-independent (the
      // charge-on-hit accounting), so reports may embed them verbatim.
      CflByNode[Nodes[I]] = Out[I];
    }
    Result.Statistics.add("cfl-queries", Nodes.size());
    Result.Statistics.add("cfl-states-visited", States);
    Result.Statistics.add("cfl-fallbacks", Fallbacks);
    Result.Statistics.add("cfl-refuted-value-sites", Refuted);
    // Hit/miss/evict splits depend on thread schedule and cache warmth:
    // environment class, excluded from cross-config byte comparison.
    Result.Statistics.addCounter("cfl-cache-hits",
                                 CacheAfter.Hits - CacheBefore.Hits,
                                 MetricDet::Environment);
    Result.Statistics.addCounter("cfl-cache-misses",
                                 CacheAfter.Misses - CacheBefore.Misses,
                                 MetricDet::Environment);
    Result.Statistics.addCounter("cfl-cache-evictions",
                                 CacheAfter.Evictions - CacheBefore.Evictions,
                                 MetricDet::Environment);
    // Slab entries materialized by this pass: the memory-engineering
    // regression signal (warm repeats must add zero).
    Result.Statistics.addCounter("cfl-memo-entries",
                                 CacheAfter.Entries - CacheBefore.Entries,
                                 MetricDet::Environment);
    // Cross-patch adoption outcome (zero for from-scratch solvers): how
    // much of the previous revision's memo survived the edit, and how
    // much the taint closure swept. Absolute, set once at construction.
    Result.Statistics.addCounter("cfl-memo-adopted", CacheAfter.Adopted,
                                 MetricDet::Environment);
    Result.Statistics.addCounter("cfl-memo-invalidated",
                                 CacheAfter.Invalidated,
                                 MetricDet::Environment);
    // Summary composition splits are likewise warmth-dependent: a memoized
    // sub-traversal never reaches its Return edges, so how many descents a
    // summary answered varies with cache state even though results don't.
    CflSummaryStats SumAfter = Cfl.summaryStats();
    Result.Statistics.addCounter("cfl-summary-applications",
                                 SumAfter.Applications - SumBefore.Applications,
                                 MetricDet::Environment);
    Result.Statistics.addCounter("cfl-summary-fallbacks",
                                 SumAfter.Fallbacks - SumBefore.Fallbacks,
                                 MetricDet::Environment);
  }

  // --- Step 5: flows-in -----------------------------------------------------

  /// Library rule: the value loaded at \p A must reach application code.
  /// A lookup into the AppReach table -- safe from pool workers, which
  /// only read it (buildAppReach ran before the pool fanned out).
  bool reachesApplication(const Access &A) {
    if (!Opts.LibraryRule || !P.isLibraryMethod(A.Method))
      return true;
    return AppReach[A.Value] != 0;
  }

  /// One backward sweep replacing a per-load forward BFS: AppReach[N] is
  /// set iff some copy edge on N's forward closure targets an application
  /// local -- exactly what the old BFS from each loaded value decided,
  /// computed for every node at once with O(1) allocations.
  void buildAppReach() {
    AppReach.assign(G.numNodes(), 0);
    std::vector<PagNodeId> Work;
    auto MarkPreds = [&](PagNodeId D) {
      for (uint32_t Id : G.copiesIn(D)) {
        const CopyEdge &E = G.copyEdges()[Id];
        if (!AppReach[E.Src]) {
          AppReach[E.Src] = 1;
          Work.push_back(E.Src);
        }
      }
    };
    // Seed: predecessors of application locals reach application code.
    for (MethodId M = 0; M < P.Methods.size(); ++M) {
      if (P.isLibraryMethod(M))
        continue;
      PagNodeId BaseId = G.localNode(M, 0);
      for (size_t L = 0; L < P.Methods[M].Locals.size(); ++L)
        MarkPreds(BaseId + static_cast<PagNodeId>(L));
    }
    while (!Work.empty()) {
      PagNodeId N = Work.back();
      Work.pop_back();
      MarkPreds(N);
    }
  }

  MethodId methodOfNode(PagNodeId N) const {
    // Linear probe over method local bases; fine at our sizes because the
    // result is cached by the caller.
    for (MethodId M = 0; M < P.Methods.size(); ++M) {
      PagNodeId BaseId = G.localNode(M, 0);
      if (N >= BaseId && N < BaseId + P.Methods[M].Locals.size())
        return M;
    }
    return kInvalidId; // static field node
  }

  /// True if a *different* store to the same plain-field slot can execute
  /// at a strictly later anchor than \p ST within one iteration: then ST's
  /// value may be gone by the iteration's end and a next-iteration load
  /// cannot be assumed to observe it. This is the site-level analogue of
  /// the effect system's ERA rule that re-taints a slot when an already-old
  /// instance is stored over (phase-1 soundness on the while fragment
  /// depends on it; see tests/property).
  bool mayBeOverwrittenLater(const Access &ST) {
    for (const Access &Other : Stores) {
      if (&Other == &ST || Other.Field != ST.Field)
        continue;
      bool SameSlot;
      if (ST.IsStatic || Other.IsStatic)
        SameSlot = ST.IsStatic && Other.IsStatic;
      else if (Base.repOf(ST.Base) == Base.repOf(Other.Base))
        // Same collapsed SCC: identical sets, so they intersect iff
        // non-empty -- no bit scan needed.
        SameSlot = !Base.pointsTo(ST.Base).empty();
      else
        SameSlot = Base.pointsTo(ST.Base).intersects(
            Base.pointsTo(Other.Base));
      if (!SameSlot)
        continue;
      for (StmtIdx A2 : anchorsFor(Other))
        for (StmtIdx A : anchorsFor(ST))
          if (A2 > A)
            return true;
    }
    return false;
  }

  /// True if some load with anchors \p LA can observe a value written by a
  /// store with anchors \p SA in an *earlier* iteration: the load executes
  /// before the store within the iteration (reads last iteration's value
  /// before it is overwritten), the stored value survives to the iteration
  /// end (no later store to the same plain slot), or the slot accumulates
  /// (array elem keeps old values). Anchor ties (same body call does both)
  /// resolve toward matching to keep false positives down.
  bool canReadPreviousIteration(const Access &Load, const Access &Store) {
    if (Store.Field == P.ElemField)
      return true; // accumulating slot
    bool OrderOk = false;
    for (StmtIdx LA : anchorsFor(Load))
      for (StmtIdx SA : anchorsFor(Store))
        OrderOk |= LA <= SA;
    if (!OrderOk)
      return false;
    return !mayBeOverwrittenLater(Store);
  }

  void computeFlowsIn() {
    // Walk retrieval chains starting at loads whose base may be an outside
    // object (or a static). Chain *exploration* ignores the library rule:
    // HashMap.get first loads the (library-internal) entry and only then
    // its value -- the intermediate hop must not block the chain. The
    // library rule gates fact *admission*: a (valueSite, field g, outside
    // b) flows-in fact is recorded only when the specific load producing
    // that value hands it to application code.
    //
    // Phase A (parallel): per-load facts that are expensive or consumed
    // repeatedly by the closure below -- the library-rule admission check
    // and the inside sites the loaded value may hold. Each worker writes
    // only its own indexed slot.
    if (Opts.LibraryRule)
      buildAppReach();
    std::vector<char> Admit(Loads.size());
    std::vector<std::vector<AllocSiteId>> InsideVals(Loads.size());
    Pool->parallelFor(Loads.size(), [&](size_t I) {
      const Access &A = Loads[I];
      Admit[I] = reachesApplication(A);
      Base.pointsTo(A.Value).forEach([&](size_t V) {
        if (isInsideSite(static_cast<AllocSiteId>(V)))
          InsideVals[I].push_back(static_cast<AllocSiteId>(V));
      });
    });

    // Phase B (sequential): seeding and transitive closure over the
    // precomputed facts, in load order -- the same visit order as a fully
    // sequential run.
    struct Item {
      AllocSiteId V;
      FieldId F;
      AllocSiteId B;
    };
    std::vector<Item> Work;
    auto Visit = [&](size_t LoadIdx, FieldId F, AllocSiteId B) {
      const Access &A = Loads[LoadIdx];
      for (AllocSiteId V : InsideVals[LoadIdx]) {
        if (Admit[LoadIdx])
          FlowsInSet
              .try_emplace({F, B}, std::less<FlowsInVal>{},
                           ArenaAllocator<FlowsInVal>{FlowsMem})
              .first->second.insert({V, &A});
        Work.push_back({V, F, B});
      }
    };
    for (size_t I = 0; I < Loads.size(); ++I) {
      const Access &A = Loads[I];
      if (A.IsStatic) {
        Visit(I, A.Field, globalsSite(P));
        continue;
      }
      Base.pointsTo(A.Base).forEach([&](size_t B) {
        if (isOutsideSite(static_cast<AllocSiteId>(B)))
          Visit(I, A.Field, static_cast<AllocSiteId>(B));
      });
    }
    // Transitive: deeper loads from already-retrieved inside objects keep
    // the (field, outside) label of the first hop.
    std::set<std::tuple<AllocSiteId, FieldId, AllocSiteId>> Seen;
    while (!Work.empty()) {
      Item It = Work.back();
      Work.pop_back();
      if (!Seen.insert({It.V, It.F, It.B}).second)
        continue;
      for (size_t I = 0; I < Loads.size(); ++I) {
        const Access &A = Loads[I];
        if (A.IsStatic)
          continue;
        if (!Base.pointsTo(A.Base).test(It.V))
          continue;
        Visit(I, It.F, It.B);
      }
    }
    Result.Statistics.add("flows-in-facts", Seen.size());
  }

  // --- Step 6: matching + reports --------------------------------------------

  /// True if statement \p I of method \p M executes on every call of M
  /// (its block dominates every return block). Caches per-method CFG +
  /// dominators.
  bool unconditionalInMethod(MethodId M, StmtIdx I) {
    auto It = MethodCfgs.find(M);
    if (It == MethodCfgs.end()) {
      auto Cfg_ = std::make_unique<Cfg>(P, M);
      auto DT = std::make_unique<DominatorTree>(*Cfg_);
      It = MethodCfgs
               .emplace(M, std::make_pair(std::move(Cfg_), std::move(DT)))
               .first;
    }
    const Cfg &G2 = *It->second.first;
    const DominatorTree &DT = *It->second.second;
    uint32_t B = G2.blockOf(I);
    const MethodInfo &MI = P.Methods[M];
    for (uint32_t RB = 0; RB < G2.numBlocks(); ++RB) {
      if (MI.Body[G2.block(RB).End - 1].Op != Opcode::Return)
        continue;
      if (!DT.dominates(B, RB))
        return false;
    }
    return true;
  }

  /// True if loop-body statement \p Anchor executes on every iteration:
  /// its block dominates every back edge of the checked loop (for regions,
  /// the region's last block).
  bool unconditionalInLoop(StmtIdx Anchor) {
    auto It = MethodCfgs.find(Loop.Method);
    if (It == MethodCfgs.end()) {
      auto Cfg_ = std::make_unique<Cfg>(P, Loop.Method);
      auto DT = std::make_unique<DominatorTree>(*Cfg_);
      It = MethodCfgs
               .emplace(Loop.Method,
                        std::make_pair(std::move(Cfg_), std::move(DT)))
               .first;
    }
    const Cfg &G2 = *It->second.first;
    const DominatorTree &DT = *It->second.second;
    uint32_t AB = G2.blockOf(Anchor);
    const MethodInfo &MI = P.Methods[Loop.Method];
    bool SawEnd = false;
    for (StmtIdx I = Loop.BodyBegin; I < Loop.BodyEnd; ++I) {
      const Stmt &S = MI.Body[I];
      bool IsBackEdge =
          S.Op == Opcode::Goto && S.Target == Loop.BodyBegin;
      bool IsRegionEnd = Loop.IsRegion && I + 1 == Loop.BodyEnd;
      if (!IsBackEdge && !IsRegionEnd)
        continue;
      SawEnd = true;
      if (!DT.dominates(AB, G2.blockOf(I)))
        return false;
    }
    return SawEnd;
  }

  /// Destructive-update refinement: is flows-out edge \p E through a slot
  /// that each iteration provably overwrites before it could be read?
  bool isStronglyOverwritten(const SiteEdge &E) {
    if (E.Field == P.ElemField)
      return false; // array slots accumulate
    // The holder must be a genuinely pre-existing outside object (not a
    // started thread allocated inside the loop): a fresh holder per
    // iteration means a fresh slot, not an overwrite.
    if (E.To != globalsSite(P) && InsideSites.count(E.To))
      return false;
    // Exactly one inside store can write the slot, through a pointer with
    // a unique target.
    const Access *Single = nullptr;
    for (const Access &A : Stores) {
      if (A.Field != E.Field)
        continue;
      bool Hits = E.To == globalsSite(P)
                      ? A.IsStatic
                      : !A.IsStatic && Base.pointsTo(A.Base).test(E.To);
      if (!Hits)
        continue;
      if (Single)
        return false;
      Single = &A;
    }
    if (!Single || Single != E.Source)
      return false;
    if (!Single->IsStatic && Base.pointsTo(Single->Base).count() != 1)
      return false;
    // The store must execute on every iteration: for a store in a callee,
    // it must run on every call of its method AND some anchor call site
    // must run every iteration; for a store directly in the loop body its
    // own statement is the anchor (the method-level dominance test does
    // not apply -- the loop-exit path legitimately bypasses the body).
    if (!inBodyRange(Single->Method, Single->Index) &&
        !unconditionalInMethod(Single->Method, Single->Index))
      return false;
    for (StmtIdx A : anchorsFor(*Single))
      if (unconditionalInLoop(A))
        return true;
    return false;
  }

  /// Assembles the provenance witness of one report: the matcher's ERA
  /// verdict, the hop-by-hop escape path from root \p S through the DFS's
  /// discovery edges to the blamed edge \p E, the flows-in facts the
  /// matcher weighed for (E.Field, E.To), and the corroboration query's
  /// outcome at the escaping store's value node. Pure function of matcher
  /// state that is itself schedule-independent, so witnesses are too.
  LeakWitness buildWitness(AllocSiteId S, const SiteEdge &E, bool AnyFlowIn) {
    LeakWitness W;
    W.Verdict = AnyFlowIn ? Era::Future : Era::Top;
    // Escape path: walk discovery edges back from E.From to the root,
    // then emit root-first with the blamed edge last.
    std::vector<const SiteEdge *> Chain{&E};
    auto PIt = ParentEdges.find(S);
    AllocSiteId Cur = E.From;
    while (Cur != S && PIt != ParentEdges.end()) {
      auto DIt = PIt->second.find(Cur);
      if (DIt == PIt->second.end())
        break; // unreachable: the DFS discovered E.From from S
      Chain.push_back(DIt->second);
      Cur = DIt->second->From;
    }
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      const SiteEdge *H = *It;
      W.Path.push_back({H->From, H->To == globalsSite(P) ? kInvalidId : H->To,
                        H->Field, H->Source->Method, H->Source->Index});
    }
    // Flows-in facts at the blamed (g, b) slot: how close the matcher came
    // to matching this edge, and why it did not.
    auto FIt = FlowsInSet.find({E.Field, E.To});
    if (FIt != FlowsInSet.end()) {
      W.FlowsInFactsAtSlot = FIt->second.size();
      for (const auto &[V, Origin] : FIt->second) {
        if (V != S)
          continue;
        ++W.FlowsInFactsForSite;
        if (!canReadPreviousIteration(*Origin, *E.Source))
          ++W.FlowsInOrderRejected;
      }
    }
    if (const CflQueryOut *Q = CflByNode.lookup(E.Source->Value)) {
      W.CflCorroborated = true;
      W.CflStatesVisited = Q->States;
      W.CflNodeBudget = Opts.Cfl.NodeBudget;
      W.CflFellBack = Q->FellBack;
      W.CflRefutedSites = Q->Refuted;
    }
    return W;
  }

  /// True if \p S may be reported (application sites always; library
  /// container internals only when asked for).
  bool isReportable(AllocSiteId S) const {
    if (Opts.ReportLibrarySites)
      return true;
    return !P.isLibraryMethod(P.AllocSites[S].Method);
  }

  void match() {
    // Per-edge matching for every site with flows-out -- including
    // non-reportable library sites, whose classification the matcher-side
    // ERA below still needs.
    std::map<AllocSiteId, std::vector<std::pair<const SiteEdge *, bool>>>
        Matching;
    for (const auto &[S, Edges] : FlowsOut) {
      auto &Out = Matching[S];
      for (const SiteEdge *E : Edges) {
        bool Matched = false;
        auto FIt = FlowsInSet.find({E->Field, E->To});
        if (FIt != FlowsInSet.end()) {
          for (const auto &[V, Origin] : FIt->second) {
            if (V != S)
              continue;
            if (canReadPreviousIteration(*Origin, *E->Source)) {
              Matched = true;
              break;
            }
          }
        }
        if (!Matched && Opts.ModelDestructiveUpdates &&
            isStronglyOverwritten(*E)) {
          Result.Statistics.add("destructive-update-suppressed");
          Matched = true;
        }
        Out.push_back({E, Matched});
      }
    }

    std::map<AllocSiteId, std::vector<LeakReport>> PerSite;
    std::set<AllocSiteId> Leaking;

    for (const auto &[S, Edges] : Matching) {
      if (!isReportable(S))
        continue;
      bool AnyFlowIn = false;
      std::vector<const SiteEdge *> Unmatched;
      for (const auto &[E, Matched] : Edges) {
        AnyFlowIn |= Matched;
        if (!Matched)
          Unmatched.push_back(E);
      }
      if (Unmatched.empty())
        continue;
      Leaking.insert(S);
      // One report per unmatched (field, outside) pair; keep the first
      // witnessing store.
      std::set<std::pair<FieldId, AllocSiteId>> Done;
      for (const SiteEdge *E : Unmatched) {
        if (!Done.insert({E->Field, E->To}).second)
          continue;
        LeakReport R;
        R.Site = S;
        R.Field = E->Field;
        R.Outside = E->To == globalsSite(P) ? kInvalidId : E->To;
        R.StoreMethod = E->Source->Method;
        R.StoreIndex = E->Source->Index;
        R.NeverFlowsBack = !AnyFlowIn;
        R.Witness = buildWitness(S, *E, AnyFlowIn);
        R.Contexts = SiteContexts[S];
        if (R.Contexts.empty())
          R.Contexts.push_back({});
        PerSite[S].push_back(std::move(R));
      }
    }

    // Pivot mode: drop sites whose escape path passes through another
    // leaking site (they are inside a reported structure).
    for (auto &[S, Reports] : PerSite) {
      if (Opts.PivotMode) {
        bool Dominated = false;
        auto TIt = Through.find(S);
        if (TIt != Through.end())
          for (AllocSiteId Mid : TIt->second)
            Dominated |= Leaking.count(Mid) != 0;
        if (Dominated) {
          Result.Statistics.add("pivot-suppressed");
          continue;
        }
      }
      for (LeakReport &R : Reports) {
        Result.NumLeakCtxSites += R.Contexts.size();
        Result.Reports.push_back(std::move(R));
      }
    }
    // Count each leaking site's contexts once (not per edge) for LS.
    Result.NumLeakCtxSites = 0;
    std::set<AllocSiteId> Counted;
    for (const LeakReport &R : Result.Reports)
      if (Counted.insert(R.Site).second)
        Result.NumLeakCtxSites += R.Contexts.size();

    // Matcher-side ERA for every inside site (consumed by --check-era):
    // pre-filtered sites were set to Current when their query was skipped.
    // Sites a cancellation cut never attempted get no classification.
    for (AllocSiteId S : InsideSites) {
      if (Unattempted.count(S))
        continue;
      if (Result.SiteEras.count(S))
        continue;
      if (StartedThreads.count(S)) {
        Result.SiteEras[S] = Era::Outside;
        continue;
      }
      auto MIt = Matching.find(S);
      if (MIt == Matching.end() || MIt->second.empty()) {
        Result.SiteEras[S] = Era::Current;
        continue;
      }
      bool AnyMatched = false;
      for (const auto &[E, Matched] : MIt->second)
        AnyMatched |= Matched;
      Result.SiteEras[S] = AnyMatched ? Era::Future : Era::Top;
    }
  }

  // --- Members -----------------------------------------------------------------

  const Program &P;
  LoopId LoopIdVal;
  const LoopInfo &Loop;
  const CallGraph &CG;
  const Pag &G;
  const AndersenPta &Base;
  const CflPta &Cfl;
  const LeakOptions &Opts;
  const EscapeAnalysis *Esc;
  std::unique_ptr<EscapeAnalysis> OwnedEsc;
  /// Executor for the per-site query fan-out; inline when jobs == 1.
  ThreadPool *Pool = nullptr;
  std::unique_ptr<ThreadPool> OwnedPool;
  /// Sites the escape pre-pass proved iteration-local (empty when off).
  BitSet Captured;

  LeakAnalysisResult Result;

  std::set<MethodId> InsideMethods;
  std::set<AllocSiteId> InsideSites;
  std::set<AllocSiteId> StartedThreads;
  /// Inside sites a cancellation cut skipped (suffix of the site order);
  /// excluded from matching and ERA classification.
  std::set<AllocSiteId> Unattempted;
  std::map<AllocSiteId, std::vector<SiteContext>> SiteContexts;

  /// Outcome of one corroboration query, kept per node for witnesses.
  struct CflQueryOut {
    uint64_t States = 0;
    bool FellBack = false;
    uint64_t Refuted = 0;
  };

  std::vector<Access> Stores, Loads;
  std::vector<SiteEdge> StoreGraph;
  std::map<AllocSiteId, std::vector<const SiteEdge *>> FlowsOut;
  /// Inside intermediates on each site's escape paths (for pivot mode).
  std::map<AllocSiteId, std::set<AllocSiteId>> Through;
  /// Per root site: discovery edge of each intermediate its flows-out DFS
  /// visited (witness path reconstruction).
  std::map<AllocSiteId, std::map<AllocSiteId, const SiteEdge *>> ParentEdges;
  /// Per flows-out/flows-in endpoint: the corroboration query's outcome.
  /// Keyed lookups only (witness embedding), never iterated -- safe as a
  /// flat map despite its unsorted table order.
  FlatMap64<CflQueryOut> CflByNode;
  /// Backing store for the flows-in fact tables: one node per admitted
  /// (value, load) pair adds up to thousands of tree nodes on container
  /// substrates, all with identical lifetime (built by computeFlowsIn,
  /// read by match, freed with the analysis). Declared before FlowsInSet
  /// so the arena outlives the containers drawing from it.
  Arena FlowsMem;
  /// (field, outside) -> set of (inside value site, witnessing load).
  using FlowsInVal = std::pair<AllocSiteId, const Access *>;
  using FlowsInValSet =
      std::set<FlowsInVal, std::less<FlowsInVal>, ArenaAllocator<FlowsInVal>>;
  using FlowsInKey = std::pair<FieldId, AllocSiteId>;
  std::map<FlowsInKey, FlowsInValSet, std::less<FlowsInKey>,
           ArenaAllocator<std::pair<const FlowsInKey, FlowsInValSet>>>
      FlowsInSet{std::less<FlowsInKey>{},
                 ArenaAllocator<std::pair<const FlowsInKey, FlowsInValSet>>{
                     FlowsMem}};

  std::unordered_map<MethodId, std::vector<StmtIdx>> MethodAnchors;
  std::unordered_map<MethodId, std::set<MethodId>> ClosureCache;
  /// Per node: does its copy-edge closure hand a value to application
  /// code? Built by one backward sweep (buildAppReach) before the flows-in
  /// phase; read lock-free by the pool workers.
  std::vector<uint8_t> AppReach;
  std::unordered_map<MethodId,
                     std::pair<std::unique_ptr<Cfg>,
                               std::unique_ptr<DominatorTree>>>
      MethodCfgs;
};

} // namespace

LeakAnalysisResult lc::analyzeLoop(const Program &P, LoopId Loop,
                                   const CallGraph &CG, const Pag &G,
                                   const AndersenPta &Base, const CflPta &Cfl,
                                   const LeakOptions &Opts,
                                   const EscapeAnalysis *Esc,
                                   ThreadPool *Pool) {
  return Analyzer(P, Loop, CG, G, Base, Cfl, Opts, Esc, Pool).run();
}

std::string lc::renderLeakReport(const Program &P,
                                 const LeakAnalysisResult &R) {
  std::ostringstream OS;
  const LoopInfo &L = P.Loops[R.Loop];
  OS << "=== LeakChecker report: " << (L.IsRegion ? "region" : "loop") << " \""
     << P.Strings.text(L.Label) << "\" in " << P.qualifiedMethodName(L.Method)
     << " ===\n";
  OS << "inside allocation sites: " << R.NumInsideSites
     << " (context-sensitive: " << R.NumInsideCtxSites << ")\n";
  OS << "leaking allocation sites: " << R.Reports.size()
     << " reports over " << R.NumLeakCtxSites << " context-sensitive sites\n";
  for (const LeakReport &Rep : R.Reports) {
    OS << "\n* LEAK: " << P.allocSiteName(Rep.Site) << "\n";
    OS << "    escapes through field '"
       << (Rep.Field == kInvalidId ? "?" : P.fieldName(Rep.Field))
       << "' of "
       << (Rep.Outside == kInvalidId ? std::string("<static/global>")
                                     : P.allocSiteName(Rep.Outside))
       << "\n";
    OS << "    escaping store at " << P.qualifiedMethodName(Rep.StoreMethod);
    SourceLoc Loc = P.Methods[Rep.StoreMethod].Body[Rep.StoreIndex].Loc;
    if (Loc.isValid())
      OS << ":" << Loc.Line;
    OS << "\n";
    OS << "    " << (Rep.NeverFlowsBack
                         ? "never flows back into the loop"
                         : "redundant reference edge (object flows back "
                           "through another edge)")
       << "\n";
    unsigned Shown = 0;
    for (const SiteContext &Ctx : Rep.Contexts) {
      if (++Shown > 4) {
        OS << "    ... " << Rep.Contexts.size() - 4 << " more contexts\n";
        break;
      }
      OS << "    context: ";
      if (Ctx.empty()) {
        OS << "<loop body>";
      } else {
        for (size_t I = 0; I < Ctx.size(); ++I) {
          if (I)
            OS << " -> ";
          OS << P.qualifiedMethodName(Ctx[I].Caller);
          SourceLoc CLoc = P.Methods[Ctx[I].Caller].Body[Ctx[I].Index].Loc;
          if (CLoc.isValid())
            OS << ":" << CLoc.Line;
        }
      }
      OS << "\n";
    }
  }
  return OS.str();
}

std::string lc::renderLeakExplanations(const Program &P,
                                       const LeakAnalysisResult &R) {
  if (R.Reports.empty())
    return {};
  auto SiteName = [&](AllocSiteId S) {
    return S == kInvalidId ? std::string("<static/global>")
                           : P.allocSiteName(S);
  };
  std::ostringstream OS;
  OS << "=== Witnesses ===\n";
  for (const LeakReport &Rep : R.Reports) {
    const LeakWitness &W = Rep.Witness;
    OS << "\n* WITNESS: " << P.allocSiteName(Rep.Site) << "\n";
    OS << "    verdict: ERA " << eraName(W.Verdict)
       << (W.Verdict == Era::Top
               ? " (escapes, nothing ever flows back into the loop)"
               : " (flows back through another edge; this edge is the "
                 "redundant reference)")
       << "\n";
    OS << "    flows-out (" << W.Path.size()
       << (W.Path.size() == 1 ? " hop" : " hops") << "): ";
    for (size_t I = 0; I < W.Path.size(); ++I) {
      const WitnessHop &H = W.Path[I];
      if (I == 0)
        OS << SiteName(H.From);
      OS << " --["
         << (H.Field == kInvalidId ? "?" : P.fieldName(H.Field)) << "]--> "
         << SiteName(H.To);
    }
    OS << "\n";
    for (const WitnessHop &H : W.Path) {
      OS << "      store '"
         << (H.Field == kInvalidId ? "?" : P.fieldName(H.Field)) << "' at "
         << P.qualifiedMethodName(H.Method);
      SourceLoc Loc = P.Methods[H.Method].Body[H.Index].Loc;
      if (Loc.isValid())
        OS << ":" << Loc.Line;
      OS << "\n";
    }
    OS << "    flows-in at ("
       << (Rep.Field == kInvalidId ? "?" : P.fieldName(Rep.Field)) << ", "
       << SiteName(Rep.Outside) << "): " << W.FlowsInFactsAtSlot
       << (W.FlowsInFactsAtSlot == 1 ? " fact" : " facts")
       << " observed, " << W.FlowsInFactsForSite << " retrieve this site, "
       << W.FlowsInOrderRejected << " rejected by iteration ordering\n";
    if (W.CflCorroborated) {
      OS << "    cfl: " << W.CflStatesVisited << " states (budget "
         << W.CflNodeBudget << "), "
         << (W.CflFellBack ? "exhausted -> Andersen fallback" : "completed")
         << ", refuted " << W.CflRefutedSites << " Andersen value-site"
         << (W.CflRefutedSites == 1 ? "" : "s") << "\n";
    } else {
      OS << "    cfl: corroboration not run\n";
    }
  }
  return OS.str();
}
