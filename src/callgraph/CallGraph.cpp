//===-- CallGraph.cpp -----------------------------------------------------===//

#include "callgraph/CallGraph.h"

#include "support/Worklist.h"

#include <cassert>

using namespace lc;

MethodId lc::dispatch(const Program &P, ClassId Receiver, MethodId Declared) {
  Symbol Name = P.Methods[Declared].Name;
  ClassId DeclClass = P.Methods[Declared].Owner;
  for (ClassId C = Receiver; C != kInvalidId; C = P.Classes[C].Super) {
    for (MethodId M : P.Classes[C].Methods)
      if (P.Methods[M].Name == Name && !P.Methods[M].IsStatic)
        return M;
    if (C == DeclClass)
      break;
  }
  // Receiver class does not inherit from the declaring class (possible with
  // imprecise points-to info); no target.
  return kInvalidId;
}

CallGraph::CallGraph(const Program &P, CallGraphKind Kind) : Kind(Kind) {
  Reachable.resize(P.Methods.size());
  build(P);
}

CallGraph::CallGraph(const Program &P, VirtualResolver Resolve)
    : Kind(CallGraphKind::Pta), Resolver(std::move(Resolve)) {
  Reachable.resize(P.Methods.size());
  build(P);
}

const std::vector<MethodId> &CallGraph::calleesAt(MethodId Caller,
                                                  StmtIdx Index) const {
  const std::vector<MethodId> *V =
      Callees.lookup((uint64_t(Caller) << 32) | Index);
  return V ? *V : Empty;
}

const std::vector<CallSite> &CallGraph::callersOf(MethodId Callee) const {
  const std::vector<CallSite> *V = Callers.lookup(Callee);
  return V ? *V : EmptySites;
}

void CallGraph::resolveCall(const Program &P, MethodId Caller, StmtIdx I,
                            const Stmt &S, const BitSet &Instantiated,
                            std::vector<MethodId> &Out) const {
  Out.clear();
  if (S.CK == CallKind::Static || S.CK == CallKind::Special) {
    Out.push_back(S.Callee);
    return;
  }
  if (Kind == CallGraphKind::Pta) {
    Out = Resolver(Caller, I, S.Callee);
    return;
  }
  // Virtual: all overrides in subtypes of the declared owner.
  ClassId Owner = P.Methods[S.Callee].Owner;
  for (ClassId C = 0; C < P.Classes.size(); ++C) {
    if (!P.isSubclassOf(C, Owner))
      continue;
    if (Kind == CallGraphKind::Rta && !Instantiated.test(C))
      continue;
    MethodId Target = dispatch(P, C, S.Callee);
    if (Target == kInvalidId)
      continue;
    if (std::find(Out.begin(), Out.end(), Target) == Out.end())
      Out.push_back(Target);
  }
  // CHA keeps the declared target callable even when no subtype was
  // instantiated yet (e.g. receiver comes from unanalyzed code).
  if (Out.empty() && Kind == CallGraphKind::Cha)
    Out.push_back(S.Callee);
}

void CallGraph::build(const Program &P) {
  // RTA: set of classes instantiated in reachable code, grown on the fly.
  BitSet Instantiated(P.Classes.size());

  Worklist<MethodId> WL;
  auto AddEntry = [&](MethodId M) {
    if (M != kInvalidId && Reachable.set(M))
      WL.push(M);
  };
  AddEntry(P.EntryMethod);
  for (MethodId M : P.ClinitMethods)
    AddEntry(M);

  // Process methods; when RTA discovers new instantiated classes, re-process
  // methods whose virtual call sites may now have more targets.
  std::vector<MethodId> Processed;
  std::vector<MethodId> Targets; // resolveCall scratch, reused per invoke
  bool InstantiatedChanged = true;
  while (InstantiatedChanged) {
    InstantiatedChanged = false;
    while (!WL.empty()) {
      MethodId M = WL.pop();
      Processed.push_back(M);
      const MethodInfo &MI = P.Methods[M];
      for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
        const Stmt &S = MI.Body[I];
        if (S.isAllocation() && S.Op != Opcode::NewArray) {
          const Type &T = P.Types.get(S.Ty);
          if (T.K == Type::Kind::Ref && Instantiated.set(T.Cls))
            InstantiatedChanged = true;
        }
        if (S.Op != Opcode::Invoke)
          continue;
        resolveCall(P, M, I, S, Instantiated, Targets);
        CallSite Site{M, I};
        // The slot pointer stays valid across the Callers inserts below
        // (they touch a different table) but not across another Callees
        // insert -- there is none until the next iteration's tryEmplace.
        std::vector<MethodId> &Slot =
            *Callees.tryEmplace((uint64_t(M) << 32) | I).first;
        for (MethodId T : Targets) {
          if (std::find(Slot.begin(), Slot.end(), T) != Slot.end())
            continue;
          Slot.push_back(T);
          Callers[T].push_back(Site);
          if (Reachable.set(T))
            WL.push(T);
        }
      }
    }
    if (InstantiatedChanged) {
      // Re-run all processed methods so virtual sites pick up targets from
      // newly instantiated classes; calleesAt slots grow monotonically.
      for (MethodId M : Processed)
        WL.push(M);
      Processed.clear();
    }
  }
}
