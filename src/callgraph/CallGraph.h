//===-- CallGraph.h - CHA/RTA call graphs ----------------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-graph construction: virtual-dispatch resolution over the class
/// hierarchy, plus two whole-program builders — CHA (all subtypes of the
/// receiver's declared class) and RTA (only classes instantiated in
/// reachable code). The leak analysis and points-to analysis consume the
/// per-call-site callee sets and the reachable-method set.
///
//===----------------------------------------------------------------------===//

#ifndef LC_CALLGRAPH_CALLGRAPH_H
#define LC_CALLGRAPH_CALLGRAPH_H

#include "ir/Program.h"
#include "support/BitSet.h"
#include "support/FlatMap.h"

#include <functional>
#include <vector>

namespace lc {

/// Identifies one call site: a statement inside a method.
struct CallSite {
  MethodId Caller = kInvalidId;
  StmtIdx Index = kInvalidId;

  friend bool operator==(CallSite A, CallSite B) {
    return A.Caller == B.Caller && A.Index == B.Index;
  }
};

struct CallSiteHash {
  size_t operator()(CallSite S) const {
    return std::hash<uint64_t>()((uint64_t(S.Caller) << 32) | S.Index);
  }
};

/// How virtual call sites are resolved.
enum class CallGraphKind {
  Cha, ///< class-hierarchy analysis: any subtype of the declared class
  Rta, ///< rapid type analysis: subtypes instantiated in reachable code
  Pta, ///< refined by receiver points-to sets (built via refineCallGraph)
};

/// Resolves the override of \p Declared for a receiver of dynamic class
/// \p Receiver (walks up from Receiver to the declaring class).
/// \returns kInvalidId when Receiver does not inherit the method.
MethodId dispatch(const Program &P, ClassId Receiver, MethodId Declared);

/// Resolves the callees of one virtual call site; used by the Pta-refined
/// builder. Return the possible targets of statement (\p Caller, \p I)
/// whose declared callee is \p Declared.
using VirtualResolver = std::function<std::vector<MethodId>(
    MethodId Caller, StmtIdx I, MethodId Declared)>;

/// A whole-program call graph.
class CallGraph {
public:
  /// Builds the call graph for \p P. Entry points: main, all <clinit>.
  CallGraph(const Program &P, CallGraphKind Kind);

  /// Builds a call graph whose virtual edges come from \p Resolve
  /// (receiver points-to sets); static/special edges are direct. Kind is
  /// reported as Pta.
  CallGraph(const Program &P, VirtualResolver Resolve);

  /// Possible callees of the call at (\p Caller, \p Index).
  const std::vector<MethodId> &calleesAt(MethodId Caller, StmtIdx Index) const;

  /// Call sites that may invoke \p Callee.
  const std::vector<CallSite> &callersOf(MethodId Callee) const;

  /// True if \p M is reachable from the entry points.
  bool isReachable(MethodId M) const { return Reachable.test(M); }

  /// All reachable methods.
  std::vector<MethodId> reachableMethods() const { return Reachable.toVector(); }
  size_t numReachable() const { return Reachable.count(); }

  CallGraphKind kind() const { return Kind; }

private:
  void build(const Program &P);
  /// Clears and refills \p Out (the build loop reuses one buffer across
  /// every invoke it processes).
  void resolveCall(const Program &P, MethodId Caller, StmtIdx I, const Stmt &S,
                   const BitSet &Instantiated,
                   std::vector<MethodId> &Out) const;

  CallGraphKind Kind;
  VirtualResolver Resolver; ///< set only for Pta graphs
  BitSet Reachable;
  /// Flat tables keyed by (Caller << 32) | Index resp. the callee id.
  /// Keyed lookups only -- nothing iterates them, so the unsorted table
  /// order is invisible to clients.
  FlatMap64<std::vector<MethodId>> Callees;
  FlatMap64<std::vector<CallSite>> Callers;
  std::vector<MethodId> Empty;
  std::vector<CallSite> EmptySites;
};

} // namespace lc

#endif // LC_CALLGRAPH_CALLGRAPH_H
