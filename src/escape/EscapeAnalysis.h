//===-- EscapeAnalysis.h - Abstract-interpretation escape analysis -*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program escape analysis in the style of Hill & Spoto ("Deriving
/// Escape Analysis by Abstract Interpretation"): per-method summaries of
/// which locals let their referent escape the frame, computed as a fixed
/// point over the call graph, plus a per-loop staleness pass built on the
/// dataflow framework.
///
/// An allocation site is *captured in its method* when no local that can
/// hold it is marked escaping -- the object is never stored to the heap
/// (instance, array, or static slot), never returned, and never handed to
/// a callee whose matching parameter escapes. Captured objects cannot be
/// reached by any heap path, so the leak matcher's per-site flows-out
/// query for them is guaranteed empty and the site's ERA with respect to
/// any loop running the allocation is `c` (Current) -- unless a local
/// carries the object across an iteration boundary, which the staleness
/// pass rules out by mirroring the effect system's iteration-advance
/// semantics (IterBegin turns held values stale; stale values surviving to
/// a back edge would be advanced to Top).
///
/// LeakAnalysis uses iterationLocal() as a pre-filter that skips the
/// per-site points-to queries outright; tools/leakchecker --check-era uses
/// it as an independent oracle against the effect system and the matcher.
///
//===----------------------------------------------------------------------===//

#ifndef LC_ESCAPE_ESCAPEANALYSIS_H
#define LC_ESCAPE_ESCAPEANALYSIS_H

#include "callgraph/CallGraph.h"
#include "support/BitSet.h"
#include "support/Stats.h"

#include <set>
#include <vector>

namespace lc {

class EscapeAnalysis {
public:
  /// Builds the per-method summaries for all of \p P (one fixed point over
  /// \p CG; cheap enough to run eagerly at session setup).
  EscapeAnalysis(const Program &P, const CallGraph &CG);

  /// Incremental rebuild across a body-level program patch. Only valid
  /// when \p CG is unchanged from \p Prev's session (patchFrom takes this
  /// path exactly when the previous call graph was reused verbatim):
  /// then only the changed methods' transfer equations differ, so the
  /// interprocedural fixed point restarts from bottom over the
  /// caller-closure cone of the edit -- the changed methods plus,
  /// transitively, their callers, the only methods a shrunken parameter
  /// summary can reach -- while every summary outside the cone is stolen
  /// from \p Prev verbatim. The per-site captured classification is
  /// recomputed in full (site ids are renumbered by the patch; the pass
  /// is intraprocedural and linear). Debug builds assert equality against
  /// a scratch run. \p Prev is consumed.
  EscapeAnalysis(const Program &P, const CallGraph &CG, EscapeAnalysis &&Prev,
                 const std::vector<uint8_t> &ChangedMethods);

  /// True if local \p L of method \p M may let its referent escape M's
  /// frame (heap store, return, or hand-off to an escaping callee slot).
  bool localMayEscape(MethodId M, LocalId L) const {
    return EscLocals[M].test(L);
  }

  /// True if no instance of site \p S ever escapes the frame of its
  /// allocating method.
  bool capturedInMethod(AllocSiteId S) const { return Captured.test(S); }

  /// Allocation sites proven iteration-local with respect to loop \p L:
  /// captured in their method, and -- for sites in the loop body itself --
  /// never held by a local across an iteration boundary. Every returned
  /// site has ERA `c`; the overload takes the precomputed inside-method
  /// set (methods transitively callable from the body) to avoid
  /// recomputing it.
  BitSet iterationLocal(LoopId L) const;
  BitSet iterationLocal(LoopId L, const std::set<MethodId> &InsideMethods) const;

  const Stats &statistics() const { return Statistics; }

private:
  void computeEscapingLocals();
  void computeCaptured();
  /// Re-runs M's local transfer to a fixed point against current callee
  /// summaries; returns true when a parameter/this bit changed (callers
  /// must then be revisited).
  bool recomputeMethod(MethodId M);
  uint64_t paramSignature(MethodId M) const;

  const Program &P;
  const CallGraph &CG;
  /// Per method: locals whose referent may escape the frame.
  std::vector<BitSet> EscLocals;
  /// Per method, per local: allocation sites of this method the local may
  /// hold directly (New plus Copy/Cast closure; flow-insensitive).
  std::vector<std::vector<BitSet>> Holders;
  /// Per allocation site: captured in its allocating method.
  BitSet Captured;
  Stats Statistics;
};

} // namespace lc

#endif // LC_ESCAPE_ESCAPEANALYSIS_H
