//===-- EscapeAnalysis.cpp ------------------------------------------------===//

#include "escape/EscapeAnalysis.h"

#include "dataflow/Dataflow.h"
#include "support/Worklist.h"

#include <cassert>
#include <map>

using namespace lc;

EscapeAnalysis::EscapeAnalysis(const Program &P, const CallGraph &CG)
    : P(P), CG(CG) {
  ScopedTimer T(Statistics, "escape-analysis");
  computeEscapingLocals();
  computeCaptured();
}

EscapeAnalysis::EscapeAnalysis(const Program &P, const CallGraph &CG,
                               EscapeAnalysis &&Prev,
                               const std::vector<uint8_t> &ChangedMethods)
    : P(P), CG(CG) {
  ScopedTimer T(Statistics, "escape-analysis");
  assert(Prev.EscLocals.size() == P.Methods.size() &&
         "body-level patch cannot add or remove methods");
  EscLocals = std::move(Prev.EscLocals);

  // The cone of methods whose summary can differ from the previous
  // revision's: the changed methods (their transfer equations read new
  // bodies) plus, transitively, their callers (a changed callee's
  // parameter bits feed the caller's Invoke transfer). With the call
  // graph reused verbatim, no other method's equation mentions anything
  // that changed, so its old least-fixpoint value is still exact.
  std::vector<uint8_t> InCone(P.Methods.size(), 0);
  std::vector<MethodId> Cone;
  for (MethodId M = 0; M < P.Methods.size(); ++M)
    if (M < ChangedMethods.size() && ChangedMethods[M]) {
      InCone[M] = 1;
      Cone.push_back(M);
    }
  for (size_t I = 0; I < Cone.size(); ++I)
    for (const CallSite &CS : CG.callersOf(Cone[I]))
      if (!InCone[CS.Caller]) {
        InCone[CS.Caller] = 1;
        Cone.push_back(CS.Caller);
      }

  // Restart the cone from bottom (a changed body can also *shrink* the
  // summary; monotone re-use of the old bits would be imprecise, and the
  // differential gate demands the exact scratch result). Sizes are
  // re-taken from the new bodies -- re-lowering may renumber locals.
  Worklist<MethodId> WL;
  for (MethodId M : Cone) {
    EscLocals[M] = BitSet();
    EscLocals[M].resize(P.Methods[M].Locals.size());
    WL.push(M);
  }
  Statistics.add("escape-incremental-cone", Cone.size());
  while (!WL.empty()) {
    MethodId M = WL.pop();
    Statistics.add("escape-method-recomputes");
    if (!recomputeMethod(M))
      continue;
    for (const CallSite &CS : CG.callersOf(M)) {
      assert(InCone[CS.Caller] && "escape cone must be caller-closed");
      WL.push(CS.Caller);
    }
  }
  computeCaptured();
#ifndef NDEBUG
  { // The cone restart must land on the whole-program least fixpoint.
    EscapeAnalysis Scratch(P, CG);
    for (MethodId M = 0; M < P.Methods.size(); ++M)
      assert(EscLocals[M] == Scratch.EscLocals[M] &&
             "incremental escape summary diverged from scratch");
    assert(Captured == Scratch.Captured &&
           "incremental captured set diverged from scratch");
  }
#endif
}

uint64_t EscapeAnalysis::paramSignature(MethodId M) const {
  const MethodInfo &MI = P.Methods[M];
  unsigned N = (MI.IsStatic ? 0u : 1u) + MI.NumParams;
  uint64_t Sig = 0;
  for (unsigned I = 0; I < N && I < 64; ++I)
    Sig |= uint64_t(EscLocals[M].test(I)) << I;
  return Sig;
}

bool EscapeAnalysis::recomputeMethod(MethodId M) {
  const MethodInfo &MI = P.Methods[M];
  BitSet &E = EscLocals[M];
  uint64_t Before = paramSignature(M);
  // In unreachable methods the call graph records no callee sets, so no
  // summaries exist to consult: treat every hand-off as escaping.
  bool Unreachable = !CG.isReachable(M);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    auto Mark = [&](LocalId L) {
      if (L != kInvalidId && E.set(L))
        Changed = true;
    };
    for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
      const Stmt &S = MI.Body[I];
      switch (S.Op) {
      case Opcode::Store:
        Mark(S.SrcB);
        break;
      case Opcode::ArrayStore:
        Mark(S.SrcC);
        break;
      case Opcode::StaticStore:
        Mark(S.SrcB);
        break;
      case Opcode::Return:
        Mark(S.SrcA);
        break;
      case Opcode::Invoke: {
        const std::vector<MethodId> &Callees = CG.calleesAt(M, I);
        if (Unreachable || Callees.empty()) {
          Mark(S.SrcA);
          for (LocalId A : S.Args)
            Mark(A);
          break;
        }
        for (MethodId C : Callees) {
          const MethodInfo &CI = P.Methods[C];
          if (!CI.IsStatic && EscLocals[C].test(CI.thisLocal()))
            Mark(S.SrcA);
          for (size_t AI = 0; AI < S.Args.size(); ++AI)
            if (EscLocals[C].test(CI.paramLocal(static_cast<unsigned>(AI))))
              Mark(S.Args[AI]);
        }
        break;
      }
      case Opcode::Copy:
      case Opcode::Cast:
        // Backward closure: if the copy's target escapes, so does its
        // source (the referent is the same object).
        if (S.Dst != kInvalidId && E.test(S.Dst))
          Mark(S.SrcA);
        break;
      default:
        break;
      }
    }
  }
  return paramSignature(M) != Before;
}

void EscapeAnalysis::computeEscapingLocals() {
  EscLocals.assign(P.Methods.size(), BitSet());
  for (MethodId M = 0; M < P.Methods.size(); ++M)
    EscLocals[M].resize(P.Methods[M].Locals.size());
  Worklist<MethodId> WL;
  for (MethodId M = 0; M < P.Methods.size(); ++M)
    WL.push(M);
  while (!WL.empty()) {
    MethodId M = WL.pop();
    Statistics.add("escape-method-recomputes");
    if (!recomputeMethod(M))
      continue;
    // A parameter summary grew: every caller may now mark more arguments.
    for (const CallSite &CS : CG.callersOf(M))
      WL.push(CS.Caller);
  }
}

void EscapeAnalysis::computeCaptured() {
  // Which locals may hold each of the method's own allocation sites:
  // direct New/NewArray/ConstStr results plus the Copy/Cast closure.
  Holders.resize(P.Methods.size());
  for (MethodId M = 0; M < P.Methods.size(); ++M) {
    const MethodInfo &MI = P.Methods[M];
    auto &H = Holders[M];
    H.assign(MI.Locals.size(), BitSet());
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Stmt &S : MI.Body) {
        switch (S.Op) {
        case Opcode::New:
        case Opcode::NewArray:
        case Opcode::ConstStr:
          if (S.Dst != kInvalidId)
            Changed |= H[S.Dst].set(S.Site);
          break;
        case Opcode::Copy:
        case Opcode::Cast:
          if (S.Dst != kInvalidId && S.SrcA != kInvalidId)
            Changed |= H[S.Dst].unionWith(H[S.SrcA]);
          break;
        default:
          break;
        }
      }
    }
  }

  Captured.resize(P.AllocSites.size());
  for (AllocSiteId S = 0; S < P.AllocSites.size(); ++S) {
    MethodId M = P.AllocSites[S].Method;
    bool Escapes = false;
    for (LocalId L = 0; L < Holders[M].size() && !Escapes; ++L)
      Escapes = Holders[M][L].test(S) && EscLocals[M].test(L);
    if (!Escapes)
      Captured.set(S);
  }
  Statistics.add("escape-captured-sites", Captured.count());
}

namespace {

/// Forward staleness analysis over the loop method: for every local, the
/// candidate sites it may hold, split into values allocated in the current
/// abstract iteration (Fresh) and values surviving from a previous one
/// (Stale). IterBegin of the analyzed loop moves Fresh to Stale, mirroring
/// the effect system's iteration advance (Current -> Top); a candidate
/// with a stale holder at a back edge would be classified Top there, so it
/// is not iteration-local.
struct IterDomain {
  std::vector<BitSet> Fresh, Stale;
};

class StalenessAnalysis {
public:
  using Domain = IterDomain;
  static constexpr DataflowDir Direction = DataflowDir::Forward;

  StalenessAnalysis(LoopId Loop, const std::map<AllocSiteId, uint32_t> &CandIdx,
                    size_t NumLocals)
      : Loop(Loop), CandIdx(CandIdx), NumLocals(NumLocals) {}

  Domain initial() const {
    Domain D;
    D.Fresh.resize(NumLocals);
    D.Stale.resize(NumLocals);
    return D;
  }
  Domain boundary() const { return initial(); }

  bool join(Domain &Into, const Domain &From) const {
    bool Changed = false;
    for (size_t L = 0; L < NumLocals; ++L) {
      Changed |= Into.Fresh[L].unionWith(From.Fresh[L]);
      Changed |= Into.Stale[L].unionWith(From.Stale[L]);
    }
    return Changed;
  }

  void transfer(const Stmt &S, StmtIdx, Domain &D) const {
    switch (S.Op) {
    case Opcode::IterBegin:
      if (S.Loop == Loop)
        for (size_t L = 0; L < NumLocals; ++L) {
          D.Stale[L].unionWith(D.Fresh[L]);
          D.Fresh[L].clear();
        }
      break;
    case Opcode::New:
    case Opcode::NewArray:
    case Opcode::ConstStr: {
      if (S.Dst == kInvalidId)
        break;
      D.Fresh[S.Dst].clear();
      D.Stale[S.Dst].clear();
      auto It = CandIdx.find(S.Site);
      if (It != CandIdx.end())
        D.Fresh[S.Dst].set(It->second);
      break;
    }
    case Opcode::Copy:
    case Opcode::Cast:
      if (S.Dst == kInvalidId || S.SrcA == kInvalidId)
        break;
      D.Fresh[S.Dst] = D.Fresh[S.SrcA];
      D.Stale[S.Dst] = D.Stale[S.SrcA];
      break;
    default:
      // Candidates are captured, hence never stored: a heap load or call
      // result cannot produce one, so any other def simply kills.
      if (S.Dst != kInvalidId && opcodeWritesDst(S.Op)) {
        D.Fresh[S.Dst].clear();
        D.Stale[S.Dst].clear();
      }
      break;
    }
  }

private:
  LoopId Loop;
  const std::map<AllocSiteId, uint32_t> &CandIdx;
  size_t NumLocals;
};

} // namespace

BitSet EscapeAnalysis::iterationLocal(LoopId L) const {
  const LoopInfo &Loop = P.Loops[L];
  std::set<MethodId> Inside;
  Worklist<MethodId> WL;
  for (StmtIdx I = Loop.BodyBegin; I < Loop.BodyEnd; ++I) {
    if (P.Methods[Loop.Method].Body[I].Op != Opcode::Invoke)
      continue;
    for (MethodId C : CG.calleesAt(Loop.Method, I))
      if (Inside.insert(C).second)
        WL.push(C);
  }
  while (!WL.empty()) {
    MethodId M = WL.pop();
    const MethodInfo &MI = P.Methods[M];
    for (StmtIdx I = 0; I < MI.Body.size(); ++I) {
      if (MI.Body[I].Op != Opcode::Invoke)
        continue;
      for (MethodId C : CG.calleesAt(M, I))
        if (Inside.insert(C).second)
          WL.push(C);
    }
  }
  return iterationLocal(L, Inside);
}

BitSet EscapeAnalysis::iterationLocal(
    LoopId L, const std::set<MethodId> &InsideMethods) const {
  const LoopInfo &Loop = P.Loops[L];
  const MethodInfo &MI = P.Methods[Loop.Method];
  BitSet Out(P.AllocSites.size());

  // Candidates in the loop body need the staleness check below; captured
  // sites in methods called from the body die before the call returns, so
  // they are iteration-local outright.
  std::map<AllocSiteId, uint32_t> CandIdx;
  for (AllocSiteId S = 0; S < P.AllocSites.size(); ++S) {
    if (!capturedInMethod(S))
      continue;
    const AllocSite &A = P.AllocSites[S];
    bool InBody = A.Method == Loop.Method && A.Index >= Loop.BodyBegin &&
                  A.Index < Loop.BodyEnd;
    if (InBody)
      CandIdx.emplace(S, static_cast<uint32_t>(CandIdx.size()));
    else if (A.Method != Loop.Method && InsideMethods.count(A.Method))
      Out.set(S);
  }
  if (CandIdx.empty())
    return Out;

  Cfg G(P, Loop.Method);
  StalenessAnalysis An(L, CandIdx, MI.Locals.size());
  DataflowSolver<StalenessAnalysis> Solver(P, G, An);
  uint32_t Head = G.blockOf(Loop.BodyBegin);
  if (Loop.IsRegion) {
    // Regions have no CFG back edge; feed region-end blocks to the head,
    // as the effect system does.
    for (uint32_t B = 0; B < G.numBlocks(); ++B)
      if (G.block(B).Begin < Loop.BodyEnd && G.block(B).End >= Loop.BodyEnd)
        Solver.addExtraEdge(B, Head);
  }
  Solver.solve();

  // Evaluate at the same points the effect system joins its exit state:
  // after blocks ending with a back-edge Goto, and after region-end
  // blocks. A candidate with a stale holder there is carried across
  // iterations and would be advanced to Top.
  BitSet Carried;
  auto Evaluate = [&](uint32_t B) {
    IterDomain D = Solver.blockOutput(B);
    for (const BitSet &S : D.Stale)
      Carried.unionWith(S);
  };
  for (uint32_t B = 0; B < G.numBlocks(); ++B) {
    StmtIdx Last = G.block(B).End - 1;
    bool BackEdge = MI.Body[Last].Op == Opcode::Goto &&
                    MI.Body[Last].Target == Loop.BodyBegin &&
                    Last >= Loop.BodyBegin && Last < Loop.BodyEnd;
    bool RegionEnd = Loop.IsRegion && G.block(B).Begin < Loop.BodyEnd &&
                     G.block(B).End >= Loop.BodyEnd;
    if (BackEdge || RegionEnd)
      Evaluate(B);
  }
  for (const auto &[S, Idx] : CandIdx)
    if (!Carried.test(Idx))
      Out.set(S);
  return Out;
}
