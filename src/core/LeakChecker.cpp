//===-- LeakChecker.cpp ---------------------------------------------------===//

#include "core/LeakChecker.h"

#include "frontend/Lower.h"
#include "ir/Verifier.h"
#include "pta/PagRemap.h"
#include "support/Trace.h"

#include <cassert>
#include <cstdio>
#include <vector>

using namespace lc;

namespace {

/// True when every changed method keeps its exact call and allocation
/// layout: invokes at the same statement indices with the same declared
/// callee and call kind, and allocations at the same statement indices
/// instantiating the same types. RTA's fixpoint inputs are exactly these
/// two per-method sequences plus the (byte-identical) class hierarchy and
/// entry points, and the call-graph tables are keyed by statement index,
/// so a shape-preserving edit cannot move a call edge, a callee set, or
/// the reachable set -- the previous session's call graph transfers
/// verbatim.
bool callShapePreserved(const Program &Old, const Program &New,
                        const std::vector<uint8_t> &Changed) {
  if (Old.Methods.size() != New.Methods.size())
    return false;
  for (MethodId M = 0; M < New.Methods.size(); ++M) {
    if (M >= Changed.size() || !Changed[M])
      continue;
    const std::vector<Stmt> &OB = Old.Methods[M].Body;
    const std::vector<Stmt> &NB = New.Methods[M].Body;
    StmtIdx I = 0, J = 0;
    while (true) {
      while (I < OB.size() && !OB[I].isCall() && !OB[I].isAllocation())
        ++I;
      while (J < NB.size() && !NB[J].isCall() && !NB[J].isAllocation())
        ++J;
      if ((I < OB.size()) != (J < NB.size()))
        return false;
      if (I >= OB.size())
        break;
      if (I != J) // Callees is keyed by (method, statement index)
        return false;
      const Stmt &A = OB[I], &B = NB[J];
      if (A.Op != B.Op)
        return false;
      if (A.isCall() && (A.Callee != B.Callee || A.CK != B.CK))
        return false;
      if (A.isAllocation() && A.Ty != B.Ty)
        return false;
      ++I;
      ++J;
    }
  }
  return true;
}

} // namespace

LeakChecker::LeakChecker(std::unique_ptr<Program> Prog, LeakOptions Opts)
    : P(std::move(Prog)), Opts(Opts) {
  {
    trace::TraceSpan Span("substrate.callgraph", "substrate");
    CG = std::make_unique<CallGraph>(*P, CallGraphKind::Rta);
  }
  {
    trace::TraceSpan Span("substrate.pag", "substrate");
    G = std::make_unique<Pag>(*P, *CG);
  }
  {
    trace::TraceSpan Span("substrate.andersen", "substrate");
    ScopedTimer T(SubstrateStats, "andersen-solve");
    Base = std::make_unique<AndersenPta>(*G);
  }
  Base->recordStats(SubstrateStats);
  if (Opts.Summaries) {
    trace::TraceSpan Span("substrate.summarize", "substrate");
    ScopedTimer T(SubstrateStats, "summarize");
    Sums = std::make_unique<Summaries>(*G, *Base, Opts.Cfl.MaxCallDepth);
    Sums->recordStats(SubstrateStats);
  }
  {
    trace::TraceSpan Span("substrate.cfl", "substrate");
    Cfl = std::make_unique<CflPta>(*G, *Base, Opts.Cfl, Sums.get());
  }
  {
    trace::TraceSpan Span("substrate.escape", "substrate");
    Esc = std::make_unique<EscapeAnalysis>(*P, *CG);
  }
  Pool = std::make_unique<ThreadPool>(Opts.Jobs);
}

std::unique_ptr<LeakChecker> LeakChecker::fromSource(std::string_view Source,
                                                     DiagnosticEngine &Diags,
                                                     LeakOptions Opts) {
  auto Prog = std::make_unique<Program>();
  if (!compileSource(Source, *Prog, Diags))
    return nullptr;
  // The frontend must hand the analyses a well-formed Program; fail fast
  // with a diagnostic instead of letting an analysis trip over bad IR.
  std::vector<std::string> Problems = verifyProgram(*Prog);
  if (!Problems.empty()) {
    for (const std::string &Prob : Problems)
      Diags.error({}, "malformed IR: " + Prob);
    return nullptr;
  }
  return std::unique_ptr<LeakChecker>(
      new LeakChecker(std::move(Prog), Opts));
}

std::unique_ptr<LeakChecker>
LeakChecker::fromProgram(std::unique_ptr<Program> P, LeakOptions Opts) {
  return std::unique_ptr<LeakChecker>(new LeakChecker(std::move(P), Opts));
}

std::unique_ptr<LeakChecker>
LeakChecker::patchFrom(LeakChecker &Prev, std::string_view NewSource,
                       DiagnosticEngine &Diags) {
  trace::TraceSpan Span("substrate.patch", "substrate");

  // --- Fallible phase: only reads Prev. Any bail-out here leaves the
  // previous session fully warm (the caller falls back to fromSource and
  // may keep Prev serving its own source).
  DeclIndex Idx = scanDeclarations(NewSource);
  if (!Idx.Valid) {
    Diags.error({}, "incremental patch: cannot segment the edited source "
                    "into declarations");
    return nullptr;
  }
  ProgramDiff Diff = diffDeclarations(Prev.P->Decls, Idx);
  if (!Diff.Patchable) {
    Diags.error({}, "incremental patch: the edit is not body-level "
                    "patchable (signature/field/class changes need a "
                    "from-scratch build)");
    return nullptr;
  }
  auto Prog = std::make_unique<Program>(*Prev.P); // deep clone, interner-safe
  std::vector<uint8_t> Changed;
  if (!patchProgram(*Prog, NewSource, Idx, Diff, Diags, &Changed))
    return nullptr; // a changed body no longer compiles; Diags has why
  {
    // Scoped verification: the patch only re-lowered the changed bodies,
    // so only those methods (and the sites/loops they own) can be newly
    // malformed. Debug builds still cross-check the whole program below.
    std::vector<std::string> Problems = verifyMethods(*Prog, Changed);
    if (!Problems.empty()) {
      for (const std::string &Prob : Problems)
        Diags.error({}, "malformed IR after patch: " + Prob);
      return nullptr;
    }
    assert(verifyProgram(*Prog).empty() &&
           "scoped verify passed but the full program is malformed");
  }
#ifndef NDEBUG
  {
    // Byte-identity starts here: the patched clone must be
    // indistinguishable (ids, bodies, tables) from a clean compile.
    Program Scratch;
    DiagnosticEngine DScratch;
    bool Compiles = compileSource(NewSource, Scratch, DScratch);
    assert(Compiles && "patched program compiled but scratch build failed");
    std::string Why;
    bool Same = Compiles && programsEquivalent(*Prog, Scratch, &Why);
    if (!Same)
      std::fprintf(stderr, "patchFrom mismatch vs scratch: %s\n",
                   Why.c_str());
    assert(Same && "patched program must equal a clean compile");
  }
#endif

  // --- Infallible phase: build the new substrate, consuming Prev's
  // solver state where reuse pays.
  std::unique_ptr<LeakChecker> C(new LeakChecker(PatchTag{}));
  C->P = std::move(Prog);
  C->Opts = Prev.Opts;
  bool CgReused = false;
  {
    trace::TraceSpan S2("substrate.callgraph", "substrate");
    if (callShapePreserved(*Prev.P, *C->P, Changed)) {
      CgReused = true;
      // The edit kept every changed method's call/alloc layout, so the
      // old graph is bit-for-bit what a rebuild would produce (the RTA
      // builder is deterministic over ids and statement indices). Moving
      // the object transfers ownership without invalidating the address
      // Prev's Pag still references.
      C->CG = std::move(Prev.CG);
      C->SubstrateStats.add("patch-callgraph-reused", 1);
#ifndef NDEBUG
      {
        CallGraph Fresh(*C->P, CallGraphKind::Rta);
        assert(C->CG->numReachable() == Fresh.numReachable());
        for (MethodId M = 0; M < C->P->Methods.size(); ++M) {
          assert(C->CG->isReachable(M) == Fresh.isReachable(M));
          const std::vector<Stmt> &Body = C->P->Methods[M].Body;
          for (StmtIdx I = 0; I < Body.size(); ++I)
            if (Body[I].isCall())
              assert(C->CG->calleesAt(M, I) == Fresh.calleesAt(M, I) &&
                     "reused call graph diverges from a rebuild");
          assert(C->CG->callersOf(M) == Fresh.callersOf(M) &&
                 "reused caller table diverges from a rebuild");
        }
      }
#endif
    } else {
      C->CG = std::make_unique<CallGraph>(*C->P, CallGraphKind::Rta);
    }
  }
  {
    trace::TraceSpan S2("substrate.pag", "substrate");
    C->G = std::make_unique<Pag>(*C->P, *C->CG);
  }
  PagRemap R = buildPagRemap(*Prev.G, *C->G, Changed);
  // Seeds read the *old* Andersen solution (removed-store alias matches);
  // the incremental re-solve below steals it, so this must come first.
  std::vector<PagNodeId> Seeds =
      collectCflPatchSeeds(*Prev.G, *Prev.Base, Changed);
  {
    trace::TraceSpan S2("substrate.andersen", "substrate");
    ScopedTimer T(C->SubstrateStats, "andersen-solve");
    C->Base = std::make_unique<AndersenPta>(*C->G, std::move(*Prev.Base), R);
  }
  C->Base->recordStats(C->SubstrateStats);
  if (C->Opts.Summaries) {
    trace::TraceSpan S2("substrate.summarize", "substrate");
    ScopedTimer T(C->SubstrateStats, "summarize");
    C->Sums = Prev.Sums
                  ? std::make_unique<Summaries>(*C->G, *C->Base,
                                                C->Opts.Cfl.MaxCallDepth,
                                                *Prev.Sums, R)
                  : std::make_unique<Summaries>(*C->G, *C->Base,
                                                C->Opts.Cfl.MaxCallDepth);
    C->Sums->recordStats(C->SubstrateStats);
  }
  {
    trace::TraceSpan S2("substrate.cfl", "substrate");
    C->Cfl = std::make_unique<CflPta>(*C->G, *C->Base, C->Opts.Cfl,
                                      C->Sums.get(), *Prev.Cfl, R, Changed,
                                      Seeds);
  }
  {
    trace::TraceSpan S2("substrate.escape", "substrate");
    // The cone restart is only exact when the caller tables are the old
    // ones verbatim; a rebuilt graph (shape changed, so RTA may have
    // re-derived callee sets anywhere) forces the full fixed point.
    if (CgReused && Prev.Esc) {
      C->Esc = std::make_unique<EscapeAnalysis>(*C->P, *C->CG,
                                                std::move(*Prev.Esc), Changed);
      C->SubstrateStats.add("patch-escape-incremental", 1);
    } else {
      C->Esc = std::make_unique<EscapeAnalysis>(*C->P, *C->CG);
    }
  }
  // The previous session is consumed either way; reuse its warm pool
  // instead of spawning a fresh set of workers per edit.
  C->Pool = std::move(Prev.Pool);
  if (!C->Pool)
    C->Pool = std::make_unique<ThreadPool>(C->Opts.Jobs);
  C->SubstrateStats.add("patch-methods-changed", Diff.MethodsBodyChanged);
  C->SubstrateStats.add("patch-methods-unchanged",
                        Diff.MethodsUnchanged + Diff.MethodsLocShifted);
  return C;
}

LeakAnalysisResult LeakChecker::runOne(LoopId Loop,
                                       const LeakOptions &O) const {
  // The session pool is reused when O asks for the same width; otherwise
  // analyzeLoop builds a right-sized one for this run.
  return analyzeLoop(*P, Loop, *CG, *G, *Base, *Cfl, O, Esc.get(),
                     Pool.get());
}

std::vector<std::string> LeakChecker::knownLabels() const {
  std::vector<std::string> Out;
  for (LoopId L = 0; L < P->Loops.size(); ++L)
    if (!P->Loops[L].Label.isEmpty())
      Out.push_back(P->Strings.text(P->Loops[L].Label));
  return Out;
}

AnalysisOutcome LeakChecker::run(const AnalysisRequest &R) const {
  trace::TraceSpan Span("leakchecker.run", "analysis");
  AnalysisOutcome O;
  O.Id = R.Id;
  O.SubstrateBuilt = true;
  O.SubstrateStats = SubstrateStats;

  // Resolve the loop set up front: a request that names a loop the
  // program does not define fails as a whole, before any analysis runs,
  // so callers never have to puzzle over a half-analyzed mixed outcome.
  std::vector<LoopId> Loops;
  std::vector<std::string> Labels;
  if (R.Loops.AllLabeled) {
    for (LoopId L = 0; L < P->Loops.size(); ++L) {
      if (P->Loops[L].Label.isEmpty())
        continue;
      if (!CG->isReachable(P->Loops[L].Method))
        continue;
      Loops.push_back(L);
      Labels.push_back(P->Strings.text(P->Loops[L].Label));
    }
  } else {
    if (R.Loops.Labels.empty()) {
      O.Status = OutcomeStatus::InvalidRequest;
      O.Diagnostics = "request names no loops: set AllLabeled or list at "
                      "least one label";
      return O;
    }
    for (const std::string &Label : R.Loops.Labels) {
      LoopId L = P->findLoop(Label);
      if (L == kInvalidId) {
        O.Status = OutcomeStatus::LoopNotFound;
        O.MissingLabel = Label;
        O.KnownLabels = knownLabels();
        return O;
      }
      Loops.push_back(L);
      Labels.push_back(Label);
    }
  }

  LeakOptions Run = R.Options.leakOptions();
  Run.Cancel = R.Deadline;

  for (size_t I = 0; I < Loops.size(); ++I) {
    // Between-loop checkpoint: completed loops are already in O.Results,
    // so an expiring deadline degrades the outcome without discarding
    // work.
    if (R.Deadline.poll()) {
      for (size_t J = I; J < Loops.size(); ++J)
        O.LoopsNotRun.push_back(Labels[J]);
      O.Status = R.Deadline.reason() == StopReason::Cancel
                     ? OutcomeStatus::Cancelled
                     : OutcomeStatus::DeadlineExpired;
      return O;
    }
    LeakAnalysisResult Res = runOne(Loops[I], Run);
    bool Partial = Res.Partial;
    StopReason Why = Res.Stopped;
    O.LoopLabels.push_back(Labels[I]);
    O.RenderedReports.push_back(renderLeakReport(*P, Res));
    O.Results.push_back(std::move(Res));
    if (Partial) {
      for (size_t J = I + 1; J < Loops.size(); ++J)
        O.LoopsNotRun.push_back(Labels[J]);
      O.Status = Why == StopReason::Cancel ? OutcomeStatus::Cancelled
                                           : OutcomeStatus::DeadlineExpired;
      return O;
    }
  }
  O.Status = OutcomeStatus::Ok;
  return O;
}

size_t LeakChecker::reachableStmts() const {
  size_t N = 0;
  for (MethodId M = 0; M < P->Methods.size(); ++M)
    if (CG->isReachable(M))
      N += P->Methods[M].Body.size();
  return N;
}
