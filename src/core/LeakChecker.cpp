//===-- LeakChecker.cpp ---------------------------------------------------===//

#include "core/LeakChecker.h"

#include "frontend/Lower.h"
#include "ir/Verifier.h"

#include <vector>

using namespace lc;

LeakChecker::LeakChecker(std::unique_ptr<Program> Prog, LeakOptions Opts)
    : P(std::move(Prog)), Opts(Opts) {
  CG = std::make_unique<CallGraph>(*P, CallGraphKind::Rta);
  G = std::make_unique<Pag>(*P, *CG);
  {
    ScopedTimer T(SubstrateStats, "andersen-solve");
    Base = std::make_unique<AndersenPta>(*G);
  }
  const AndersenCounters &AC = Base->counters();
  SubstrateStats.add("andersen-sccs-collapsed", AC.SccsCollapsed);
  SubstrateStats.add("andersen-scc-nodes-merged", AC.SccNodesMerged);
  SubstrateStats.add("andersen-online-collapse-passes",
                     AC.OnlineCollapsePasses);
  SubstrateStats.add("andersen-delta-pushes", AC.DeltaPushes);
  SubstrateStats.add("andersen-solve-iterations", AC.Iterations);
  Cfl = std::make_unique<CflPta>(*G, *Base, Opts.Cfl);
  Esc = std::make_unique<EscapeAnalysis>(*P, *CG);
  Pool = std::make_unique<ThreadPool>(Opts.Jobs);
}

std::unique_ptr<LeakChecker> LeakChecker::fromSource(std::string_view Source,
                                                     DiagnosticEngine &Diags,
                                                     LeakOptions Opts) {
  auto Prog = std::make_unique<Program>();
  if (!compileSource(Source, *Prog, Diags))
    return nullptr;
  // The frontend must hand the analyses a well-formed Program; fail fast
  // with a diagnostic instead of letting an analysis trip over bad IR.
  std::vector<std::string> Problems = verifyProgram(*Prog);
  if (!Problems.empty()) {
    for (const std::string &Prob : Problems)
      Diags.error({}, "malformed IR: " + Prob);
    return nullptr;
  }
  return std::unique_ptr<LeakChecker>(
      new LeakChecker(std::move(Prog), Opts));
}

std::unique_ptr<LeakChecker>
LeakChecker::fromProgram(std::unique_ptr<Program> P, LeakOptions Opts) {
  return std::unique_ptr<LeakChecker>(new LeakChecker(std::move(P), Opts));
}

std::optional<LeakAnalysisResult>
LeakChecker::check(std::string_view LoopLabel) const {
  LoopId L = P->findLoop(LoopLabel);
  if (L == kInvalidId)
    return std::nullopt;
  return check(L);
}

LeakAnalysisResult LeakChecker::check(LoopId Loop) const {
  return analyzeLoop(*P, Loop, *CG, *G, *Base, *Cfl, Opts, Esc.get(),
                     Pool.get());
}

LeakAnalysisResult LeakChecker::checkWith(LoopId Loop,
                                          const LeakOptions &O) const {
  // The session pool is reused when O asks for the same width; otherwise
  // analyzeLoop builds a right-sized one for this run.
  return analyzeLoop(*P, Loop, *CG, *G, *Base, *Cfl, O, Esc.get(),
                     Pool.get());
}

std::vector<LeakAnalysisResult> LeakChecker::checkAllLabeled() const {
  std::vector<LeakAnalysisResult> Out;
  for (LoopId L = 0; L < P->Loops.size(); ++L) {
    if (P->Loops[L].Label.isEmpty())
      continue;
    if (!CG->isReachable(P->Loops[L].Method))
      continue;
    Out.push_back(check(L));
  }
  return Out;
}

size_t LeakChecker::reachableStmts() const {
  size_t N = 0;
  for (MethodId M = 0; M < P->Methods.size(); ++M)
    if (CG->isReachable(M))
      N += P->Methods[M].Body.size();
  return N;
}
