//===-- LeakChecker.cpp ---------------------------------------------------===//

#include "core/LeakChecker.h"

#include "frontend/Lower.h"
#include "ir/Verifier.h"
#include "support/Trace.h"

#include <vector>

using namespace lc;

LeakChecker::LeakChecker(std::unique_ptr<Program> Prog, LeakOptions Opts)
    : P(std::move(Prog)), Opts(Opts) {
  {
    trace::TraceSpan Span("substrate.callgraph", "substrate");
    CG = std::make_unique<CallGraph>(*P, CallGraphKind::Rta);
  }
  {
    trace::TraceSpan Span("substrate.pag", "substrate");
    G = std::make_unique<Pag>(*P, *CG);
  }
  {
    trace::TraceSpan Span("substrate.andersen", "substrate");
    ScopedTimer T(SubstrateStats, "andersen-solve");
    Base = std::make_unique<AndersenPta>(*G);
  }
  Base->recordStats(SubstrateStats);
  if (Opts.Summaries) {
    trace::TraceSpan Span("substrate.summarize", "substrate");
    ScopedTimer T(SubstrateStats, "summarize");
    Sums = std::make_unique<Summaries>(*G, *Base, Opts.Cfl.MaxCallDepth);
    Sums->recordStats(SubstrateStats);
  }
  {
    trace::TraceSpan Span("substrate.cfl", "substrate");
    Cfl = std::make_unique<CflPta>(*G, *Base, Opts.Cfl, Sums.get());
  }
  {
    trace::TraceSpan Span("substrate.escape", "substrate");
    Esc = std::make_unique<EscapeAnalysis>(*P, *CG);
  }
  Pool = std::make_unique<ThreadPool>(Opts.Jobs);
}

std::unique_ptr<LeakChecker> LeakChecker::fromSource(std::string_view Source,
                                                     DiagnosticEngine &Diags,
                                                     LeakOptions Opts) {
  auto Prog = std::make_unique<Program>();
  if (!compileSource(Source, *Prog, Diags))
    return nullptr;
  // The frontend must hand the analyses a well-formed Program; fail fast
  // with a diagnostic instead of letting an analysis trip over bad IR.
  std::vector<std::string> Problems = verifyProgram(*Prog);
  if (!Problems.empty()) {
    for (const std::string &Prob : Problems)
      Diags.error({}, "malformed IR: " + Prob);
    return nullptr;
  }
  return std::unique_ptr<LeakChecker>(
      new LeakChecker(std::move(Prog), Opts));
}

std::unique_ptr<LeakChecker>
LeakChecker::fromProgram(std::unique_ptr<Program> P, LeakOptions Opts) {
  return std::unique_ptr<LeakChecker>(new LeakChecker(std::move(P), Opts));
}

LeakAnalysisResult LeakChecker::runOne(LoopId Loop,
                                       const LeakOptions &O) const {
  // The session pool is reused when O asks for the same width; otherwise
  // analyzeLoop builds a right-sized one for this run.
  return analyzeLoop(*P, Loop, *CG, *G, *Base, *Cfl, O, Esc.get(),
                     Pool.get());
}

std::vector<std::string> LeakChecker::knownLabels() const {
  std::vector<std::string> Out;
  for (LoopId L = 0; L < P->Loops.size(); ++L)
    if (!P->Loops[L].Label.isEmpty())
      Out.push_back(P->Strings.text(P->Loops[L].Label));
  return Out;
}

AnalysisOutcome LeakChecker::run(const AnalysisRequest &R) const {
  trace::TraceSpan Span("leakchecker.run", "analysis");
  AnalysisOutcome O;
  O.Id = R.Id;
  O.SubstrateBuilt = true;
  O.SubstrateStats = SubstrateStats;

  // Resolve the loop set up front: a request that names a loop the
  // program does not define fails as a whole, before any analysis runs,
  // so callers never have to puzzle over a half-analyzed mixed outcome.
  std::vector<LoopId> Loops;
  std::vector<std::string> Labels;
  if (R.Loops.AllLabeled) {
    for (LoopId L = 0; L < P->Loops.size(); ++L) {
      if (P->Loops[L].Label.isEmpty())
        continue;
      if (!CG->isReachable(P->Loops[L].Method))
        continue;
      Loops.push_back(L);
      Labels.push_back(P->Strings.text(P->Loops[L].Label));
    }
  } else {
    if (R.Loops.Labels.empty()) {
      O.Status = OutcomeStatus::InvalidRequest;
      O.Diagnostics = "request names no loops: set AllLabeled or list at "
                      "least one label";
      return O;
    }
    for (const std::string &Label : R.Loops.Labels) {
      LoopId L = P->findLoop(Label);
      if (L == kInvalidId) {
        O.Status = OutcomeStatus::LoopNotFound;
        O.MissingLabel = Label;
        O.KnownLabels = knownLabels();
        return O;
      }
      Loops.push_back(L);
      Labels.push_back(Label);
    }
  }

  LeakOptions Run = R.Options.leakOptions();
  Run.Cancel = R.Deadline;

  for (size_t I = 0; I < Loops.size(); ++I) {
    // Between-loop checkpoint: completed loops are already in O.Results,
    // so an expiring deadline degrades the outcome without discarding
    // work.
    if (R.Deadline.poll()) {
      for (size_t J = I; J < Loops.size(); ++J)
        O.LoopsNotRun.push_back(Labels[J]);
      O.Status = R.Deadline.reason() == StopReason::Cancel
                     ? OutcomeStatus::Cancelled
                     : OutcomeStatus::DeadlineExpired;
      return O;
    }
    LeakAnalysisResult Res = runOne(Loops[I], Run);
    bool Partial = Res.Partial;
    StopReason Why = Res.Stopped;
    O.LoopLabels.push_back(Labels[I]);
    O.RenderedReports.push_back(renderLeakReport(*P, Res));
    O.Results.push_back(std::move(Res));
    if (Partial) {
      for (size_t J = I + 1; J < Loops.size(); ++J)
        O.LoopsNotRun.push_back(Labels[J]);
      O.Status = Why == StopReason::Cancel ? OutcomeStatus::Cancelled
                                           : OutcomeStatus::DeadlineExpired;
      return O;
    }
  }
  O.Status = OutcomeStatus::Ok;
  return O;
}

std::optional<LeakAnalysisResult>
LeakChecker::check(std::string_view LoopLabel) const {
  LoopId L = P->findLoop(LoopLabel);
  if (L == kInvalidId)
    return std::nullopt;
  return runOne(L, Opts);
}

LeakAnalysisResult LeakChecker::check(LoopId Loop) const {
  return runOne(Loop, Opts);
}

LeakAnalysisResult LeakChecker::checkWith(LoopId Loop,
                                          const LeakOptions &O) const {
  return runOne(Loop, O);
}

std::vector<LeakAnalysisResult> LeakChecker::checkAllLabeled() const {
  AnalysisRequest R;
  R.Loops = LoopSet::allLabeled();
  std::optional<SessionOptions> SO =
      SessionOptionsBuilder().fromLegacy(Opts).build();
  if (SO) {
    R.Options = *SO;
    AnalysisOutcome O = run(R);
    return std::move(O.Results);
  }
  // The legacy wrappers never validated, so a session constructed with an
  // option combination build() now rejects still analyzes the old way
  // instead of crashing its caller.
  std::vector<LeakAnalysisResult> Out;
  for (LoopId L = 0; L < P->Loops.size(); ++L) {
    if (P->Loops[L].Label.isEmpty())
      continue;
    if (!CG->isReachable(P->Loops[L].Method))
      continue;
    Out.push_back(runOne(L, Opts));
  }
  return Out;
}

size_t LeakChecker::reachableStmts() const {
  size_t N = 0;
  for (MethodId M = 0; M < P->Methods.size(); ++M)
    if (CG->isReachable(M))
      N += P->Methods[M].Body.size();
  return N;
}
