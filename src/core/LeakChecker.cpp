//===-- LeakChecker.cpp ---------------------------------------------------===//

#include "core/LeakChecker.h"

#include "frontend/Lower.h"
#include "ir/Verifier.h"
#include "support/Trace.h"

#include <vector>

using namespace lc;

LeakChecker::LeakChecker(std::unique_ptr<Program> Prog, LeakOptions Opts)
    : P(std::move(Prog)), Opts(Opts) {
  {
    trace::TraceSpan Span("substrate.callgraph", "substrate");
    CG = std::make_unique<CallGraph>(*P, CallGraphKind::Rta);
  }
  {
    trace::TraceSpan Span("substrate.pag", "substrate");
    G = std::make_unique<Pag>(*P, *CG);
  }
  {
    trace::TraceSpan Span("substrate.andersen", "substrate");
    ScopedTimer T(SubstrateStats, "andersen-solve");
    Base = std::make_unique<AndersenPta>(*G);
  }
  Base->recordStats(SubstrateStats);
  {
    trace::TraceSpan Span("substrate.cfl", "substrate");
    Cfl = std::make_unique<CflPta>(*G, *Base, Opts.Cfl);
  }
  {
    trace::TraceSpan Span("substrate.escape", "substrate");
    Esc = std::make_unique<EscapeAnalysis>(*P, *CG);
  }
  Pool = std::make_unique<ThreadPool>(Opts.Jobs);
}

std::unique_ptr<LeakChecker> LeakChecker::fromSource(std::string_view Source,
                                                     DiagnosticEngine &Diags,
                                                     LeakOptions Opts) {
  auto Prog = std::make_unique<Program>();
  if (!compileSource(Source, *Prog, Diags))
    return nullptr;
  // The frontend must hand the analyses a well-formed Program; fail fast
  // with a diagnostic instead of letting an analysis trip over bad IR.
  std::vector<std::string> Problems = verifyProgram(*Prog);
  if (!Problems.empty()) {
    for (const std::string &Prob : Problems)
      Diags.error({}, "malformed IR: " + Prob);
    return nullptr;
  }
  return std::unique_ptr<LeakChecker>(
      new LeakChecker(std::move(Prog), Opts));
}

std::unique_ptr<LeakChecker>
LeakChecker::fromProgram(std::unique_ptr<Program> P, LeakOptions Opts) {
  return std::unique_ptr<LeakChecker>(new LeakChecker(std::move(P), Opts));
}

std::optional<LeakAnalysisResult>
LeakChecker::check(std::string_view LoopLabel) const {
  LoopId L = P->findLoop(LoopLabel);
  if (L == kInvalidId)
    return std::nullopt;
  return check(L);
}

LeakAnalysisResult LeakChecker::check(LoopId Loop) const {
  return analyzeLoop(*P, Loop, *CG, *G, *Base, *Cfl, Opts, Esc.get(),
                     Pool.get());
}

LeakAnalysisResult LeakChecker::checkWith(LoopId Loop,
                                          const LeakOptions &O) const {
  // The session pool is reused when O asks for the same width; otherwise
  // analyzeLoop builds a right-sized one for this run.
  return analyzeLoop(*P, Loop, *CG, *G, *Base, *Cfl, O, Esc.get(),
                     Pool.get());
}

std::vector<LeakAnalysisResult> LeakChecker::checkAllLabeled() const {
  std::vector<LeakAnalysisResult> Out;
  for (LoopId L = 0; L < P->Loops.size(); ++L) {
    if (P->Loops[L].Label.isEmpty())
      continue;
    if (!CG->isReachable(P->Loops[L].Method))
      continue;
    Out.push_back(check(L));
  }
  return Out;
}

size_t LeakChecker::reachableStmts() const {
  size_t N = 0;
  for (MethodId M = 0; M < P->Methods.size(); ++M)
    if (CG->isReachable(M))
      N += P->Methods[M].Body.size();
  return N;
}
