//===-- RunReport.cpp -----------------------------------------------------===//

#include "core/RunReport.h"

#include "support/Json.h"

#include <sstream>

using namespace lc;
using lc::json::num;
using lc::json::quote;

namespace {

const char *detKey(MetricDet D) {
  switch (D) {
  case MetricDet::Stable:
    return "stable";
  case MetricDet::Environment:
    return "environment";
  case MetricDet::Timing:
    return "timing";
  }
  return "stable";
}

std::string siteOrNull(const Program &P, AllocSiteId S) {
  return S == kInvalidId ? std::string("null") : quote(P.allocSiteName(S));
}

std::string lineOrNull(const Program &P, MethodId M, StmtIdx I) {
  SourceLoc Loc = P.Methods[M].Body[I].Loc;
  return Loc.isValid() ? std::to_string(Loc.Line) : std::string("null");
}

void emitWitness(std::ostream &OS, const Program &P, const LeakReport &Rep,
                 const char *Ind) {
  const LeakWitness &W = Rep.Witness;
  OS << Ind << "\"witness\": {\n";
  OS << Ind << "  \"verdict\": " << quote(eraName(W.Verdict)) << ",\n";
  OS << Ind << "  \"path\": [";
  for (size_t I = 0; I < W.Path.size(); ++I) {
    const WitnessHop &H = W.Path[I];
    OS << (I ? "," : "") << "\n";
    OS << Ind << "    {\n";
    OS << Ind << "      \"from\": " << quote(P.allocSiteName(H.From)) << ",\n";
    OS << Ind << "      \"field\": " << quote(P.fieldName(H.Field)) << ",\n";
    OS << Ind << "      \"to\": " << siteOrNull(P, H.To) << ",\n";
    OS << Ind << "      \"store_method\": "
       << quote(P.qualifiedMethodName(H.Method)) << ",\n";
    OS << Ind << "      \"store_line\": " << lineOrNull(P, H.Method, H.Index)
       << "\n";
    OS << Ind << "    }";
  }
  if (!W.Path.empty())
    OS << "\n" << Ind << "  ";
  OS << "],\n";
  OS << Ind << "  \"flows_in\": {\n";
  OS << Ind << "    \"facts_at_slot\": " << W.FlowsInFactsAtSlot << ",\n";
  OS << Ind << "    \"facts_for_site\": " << W.FlowsInFactsForSite << ",\n";
  OS << Ind << "    \"order_rejected\": " << W.FlowsInOrderRejected << "\n";
  OS << Ind << "  },\n";
  OS << Ind << "  \"cfl\": {\n";
  OS << Ind << "    \"corroborated\": "
     << (W.CflCorroborated ? "true" : "false") << ",\n";
  OS << Ind << "    \"states_visited\": " << W.CflStatesVisited << ",\n";
  OS << Ind << "    \"node_budget\": " << W.CflNodeBudget << ",\n";
  OS << Ind << "    \"fell_back\": " << (W.CflFellBack ? "true" : "false")
     << ",\n";
  OS << Ind << "    \"refuted_value_sites\": " << W.CflRefutedSites << "\n";
  OS << Ind << "  }\n";
  OS << Ind << "}";
}

void emitReport(std::ostream &OS, const Program &P, const LeakReport &Rep) {
  OS << "        {\n";
  OS << "          \"site\": " << quote(P.allocSiteName(Rep.Site)) << ",\n";
  OS << "          \"field\": "
     << (Rep.Field == kInvalidId ? std::string("null")
                                 : quote(P.fieldName(Rep.Field)))
     << ",\n";
  OS << "          \"outside\": " << siteOrNull(P, Rep.Outside) << ",\n";
  OS << "          \"store_method\": "
     << quote(P.qualifiedMethodName(Rep.StoreMethod)) << ",\n";
  OS << "          \"store_line\": "
     << lineOrNull(P, Rep.StoreMethod, Rep.StoreIndex) << ",\n";
  OS << "          \"never_flows_back\": "
     << (Rep.NeverFlowsBack ? "true" : "false") << ",\n";
  OS << "          \"num_contexts\": " << Rep.Contexts.size() << ",\n";
  emitWitness(OS, P, Rep, "          ");
  OS << "\n        }";
}

void emitLoop(std::ostream &OS, const Program &P,
              const LeakAnalysisResult &R) {
  const LoopInfo &L = P.Loops[R.Loop];
  OS << "    {\n";
  OS << "      \"label\": " << quote(P.Strings.text(L.Label)) << ",\n";
  OS << "      \"method\": " << quote(P.qualifiedMethodName(L.Method))
     << ",\n";
  OS << "      \"kind\": " << (L.IsRegion ? "\"region\"" : "\"loop\"")
     << ",\n";
  OS << "      \"inside_sites\": " << R.NumInsideSites << ",\n";
  OS << "      \"inside_ctx_sites\": " << R.NumInsideCtxSites << ",\n";
  OS << "      \"leak_ctx_sites\": " << R.NumLeakCtxSites << ",\n";
  OS << "      \"reports\": [";
  for (size_t I = 0; I < R.Reports.size(); ++I) {
    OS << (I ? "," : "") << "\n";
    emitReport(OS, P, R.Reports[I]);
  }
  if (!R.Reports.empty())
    OS << "\n      ";
  OS << "]\n";
  OS << "    }";
}

/// One determinism section of the metrics object. Counters and gauges
/// render as plain numbers; timings as {seconds, samples, histogram}.
void emitMetricSection(std::ostream &OS, const MetricsRegistry &M,
                       MetricDet Det) {
  OS << "    " << quote(detKey(Det)) << ": {";
  bool First = true;
  for (const MetricsRegistry::Metric &E : M.metrics()) {
    if (E.Det != Det)
      continue;
    OS << (First ? "" : ",") << "\n";
    First = false;
    if (E.Kind == MetricKind::Timing) {
      OS << "      " << quote(E.Name) << ": {\n";
      OS << "        \"seconds\": " << num(E.Seconds) << ",\n";
      OS << "        \"samples\": " << E.Hist.samples() << ",\n";
      OS << "        \"histogram_us_pow2\": [";
      for (unsigned I = 0; I < TimingHistogram::kBuckets; ++I)
        OS << (I ? ", " : "") << E.Hist.Count[I];
      OS << "]\n";
      OS << "      }";
    } else {
      OS << "      " << quote(E.Name) << ": " << E.Value;
    }
  }
  if (!First)
    OS << "\n    ";
  OS << "}";
}

} // namespace

std::string lc::renderRunReportJson(
    const Program &P, std::string_view InputName,
    const std::vector<LeakAnalysisResult> &Results,
    const MetricsRegistry &Merged) {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"schema\": " << quote(kRunReportSchema) << ",\n";
  OS << "  \"version\": " << kRunReportVersion << ",\n";
  OS << "  \"input\": " << quote(InputName) << ",\n";
  OS << "  \"loops\": [";
  for (size_t I = 0; I < Results.size(); ++I) {
    OS << (I ? "," : "") << "\n";
    emitLoop(OS, P, Results[I]);
  }
  if (!Results.empty())
    OS << "\n  ";
  OS << "],\n";
  OS << "  \"metrics\": {\n";
  // Section order is the byte-comparison contract: everything above the
  // "environment" line is stable for a given input (see RunReport.h).
  emitMetricSection(OS, Merged, MetricDet::Stable);
  OS << ",\n";
  emitMetricSection(OS, Merged, MetricDet::Environment);
  OS << ",\n";
  emitMetricSection(OS, Merged, MetricDet::Timing);
  OS << "\n  }\n";
  OS << "}\n";
  return OS.str();
}
