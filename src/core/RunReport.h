//===-- RunReport.h - Versioned machine-readable run report ----*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--stats-json` run report: one versioned JSON document per tool
/// invocation carrying the leak reports (with their provenance
/// witnesses) and every metric of the run, grouped by determinism class.
/// The schema is checked in at bench/report_schema.json and validated in
/// CI; docs/OBSERVABILITY.md describes the format.
///
/// Layout contract consumers rely on:
///   - two-space indentation, one key per line, fixed key order;
///   - inside "metrics", the "stable" section precedes "environment"
///     which precedes "timing". Everything before the "environment" line
///     is byte-identical for a given input across --jobs counts and memo
///     cache configurations -- the determinism tests compare exactly that
///     prefix.
///
//===----------------------------------------------------------------------===//

#ifndef LC_CORE_RUNREPORT_H
#define LC_CORE_RUNREPORT_H

#include "leak/LeakAnalysis.h"

#include <string>
#include <string_view>
#include <vector>

namespace lc {

inline constexpr const char *kRunReportSchema = "leakchecker-run-report";
inline constexpr int kRunReportVersion = 1;

/// Renders the run report for \p Results (one entry per checked loop,
/// in check order) and the merged metrics \p Merged (substrate stats plus
/// every result's statistics). \p InputName identifies what was analyzed
/// (subject name or file path).
std::string renderRunReportJson(const Program &P, std::string_view InputName,
                                const std::vector<LeakAnalysisResult> &Results,
                                const MetricsRegistry &Merged);

} // namespace lc

#endif // LC_CORE_RUNREPORT_H
