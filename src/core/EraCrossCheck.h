//===-- EraCrossCheck.h - Escape vs ERA consistency check ------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic cross-check behind the tool's --check-era flag: the escape
/// pre-pass claims that sites it proves iteration-local have ERA `c`
/// (Current) and can never be reported. This module verifies the claim
/// against the two independent classifiers -- the formal type-and-effect
/// system of section 3 and the interprocedural matcher of section 4 (run
/// with the pre-filter OFF, so its own verdict is compared, not the
/// filter's). Any disagreement is a soundness bug in one of the three.
///
//===----------------------------------------------------------------------===//

#ifndef LC_CORE_ERACROSSCHECK_H
#define LC_CORE_ERACROSSCHECK_H

#include "core/LeakChecker.h"

#include <string>
#include <vector>

namespace lc {

/// One captured site that a downstream classifier did not agree is
/// iteration-local.
struct EraDisagreement {
  LoopId Loop = kInvalidId;
  AllocSiteId Site = kInvalidId;
  /// Which classifier disagreed and what it said.
  std::string Detail;
};

struct EraCrossCheckResult {
  uint64_t LoopsChecked = 0;
  /// Total escape-proved iteration-local sites examined over all loops.
  uint64_t CapturedSites = 0;
  std::vector<EraDisagreement> Disagreements;
};

/// Cross-checks every labeled reachable loop/region of \p LC's program.
EraCrossCheckResult crossCheckEra(const LeakChecker &LC);

std::string renderEraCrossCheck(const Program &P,
                                const EraCrossCheckResult &R);

} // namespace lc

#endif // LC_CORE_ERACROSSCHECK_H
