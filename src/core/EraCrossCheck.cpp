//===-- EraCrossCheck.cpp -------------------------------------------------===//

#include "core/EraCrossCheck.h"

#include "effect/EffectSystem.h"

#include <sstream>

using namespace lc;

EraCrossCheckResult lc::crossCheckEra(const LeakChecker &LC) {
  const Program &P = LC.program();
  EraCrossCheckResult R;

  for (LoopId L = 0; L < P.Loops.size(); ++L) {
    if (P.Loops[L].Label.isEmpty())
      continue;
    if (!LC.callGraph().isReachable(P.Loops[L].Method))
      continue;
    ++R.LoopsChecked;

    BitSet Cap = LC.escape().iterationLocal(L);
    if (Cap.empty())
      continue;

    // The matcher with the pre-filter disabled, so SiteEras carries its own
    // classification of every inside site rather than the filter's.
    LeakOptions O = LC.options();
    O.EscapePrefilter = false;
    AnalysisRequest Req;
    Req.Loops = LoopSet::of({P.Strings.text(P.Loops[L].Label)});
    Req.Options = SessionOptionsBuilder().fromLegacy(O).build().value();
    AnalysisOutcome Out = LC.run(Req);
    if (Out.Results.size() != 1)
      continue; // cross-check is best-effort; skip loops that fail to run
    LeakAnalysisResult Matcher = std::move(Out.Results.front());
    EffectSummary Effect = runEffectSystem(P, L);

    Cap.forEach([&](size_t SI) {
      AllocSiteId S = static_cast<AllocSiteId>(SI);
      ++R.CapturedSites;

      auto EraIt = Matcher.SiteEras.find(S);
      if (EraIt != Matcher.SiteEras.end()) {
        // Outside = started-thread modeling forced the site outside; that
        // is a deliberate override, not a classification disagreement.
        if (EraIt->second == Era::Outside)
          return;
        if (EraIt->second != Era::Current)
          R.Disagreements.push_back(
              {L, S,
               std::string("matcher classifies site as era `") +
                   eraName(EraIt->second) + "`"});
      }
      if (Matcher.reportsSite(S))
        R.Disagreements.push_back({L, S, "matcher reports site as leaking"});

      Era E = Effect.eraOf(S);
      if (E != Era::Current)
        R.Disagreements.push_back(
            {L, S,
             std::string("effect system classifies site as era `") +
                 eraName(E) + "`"});
    });
  }
  return R;
}

std::string lc::renderEraCrossCheck(const Program &P,
                                    const EraCrossCheckResult &R) {
  std::ostringstream OS;
  OS << "=== ERA cross-check ===\n";
  OS << "labeled reachable loops checked: " << R.LoopsChecked << "\n";
  OS << "escape-proved iteration-local sites: " << R.CapturedSites << "\n";
  if (R.Disagreements.empty()) {
    OS << "disagreements: none\n";
    return OS.str();
  }
  OS << "disagreements: " << R.Disagreements.size() << "\n";
  for (const EraDisagreement &D : R.Disagreements) {
    const AllocSite &A = P.AllocSites[D.Site];
    OS << "  loop \"" << P.Strings.text(P.Loops[D.Loop].Label) << "\" site #"
       << D.Site << " (" << P.qualifiedMethodName(A.Method) << " @"
       << A.Index << "): " << D.Detail << "\n";
  }
  return OS.str();
}
