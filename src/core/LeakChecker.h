//===-- LeakChecker.h - End-to-end driver ----------------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: compile MJ source (or accept a
/// prebuilt Program), build the analysis substrate once (call graph, PAG,
/// Andersen, demand-driven CFL), and check user-specified loops/regions.
/// Mirrors how the paper's tool is used: "once the important loops and
/// code regions are specified by the tool user, the rest of the approach
/// is fully automated."
///
//===----------------------------------------------------------------------===//

#ifndef LC_CORE_LEAKCHECKER_H
#define LC_CORE_LEAKCHECKER_H

#include "escape/EscapeAnalysis.h"
#include "leak/LeakAnalysis.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <memory>
#include <optional>
#include <string>

namespace lc {

/// One LeakChecker session over a fixed program.
class LeakChecker {
public:
  /// Compiles \p Source; returns nullptr (and fills \p Diags) on errors.
  static std::unique_ptr<LeakChecker>
  fromSource(std::string_view Source, DiagnosticEngine &Diags,
             LeakOptions Opts = {});

  /// Wraps an already-built program (takes ownership).
  static std::unique_ptr<LeakChecker> fromProgram(std::unique_ptr<Program> P,
                                                  LeakOptions Opts = {});

  /// Checks the loop/region labeled \p LoopLabel.
  /// \returns nullopt when no such loop exists.
  std::optional<LeakAnalysisResult> check(std::string_view LoopLabel) const;
  /// Checks loop \p Loop.
  LeakAnalysisResult check(LoopId Loop) const;

  /// Re-runs with different options (substrate is reused).
  LeakAnalysisResult checkWith(LoopId Loop, const LeakOptions &Opts) const;

  /// Checks every labeled loop and region of the program (unlabeled loops
  /// are skipped: they are compiler-introduced or uninteresting inner
  /// loops unless the user names them). Results come back in loop order.
  std::vector<LeakAnalysisResult> checkAllLabeled() const;

  const Program &program() const { return *P; }
  const CallGraph &callGraph() const { return *CG; }
  const Pag &pag() const { return *G; }
  const AndersenPta &andersen() const { return *Base; }
  const CflPta &cfl() const { return *Cfl; }
  const EscapeAnalysis &escape() const { return *Esc; }
  const LeakOptions &options() const { return Opts; }
  /// The session's query fan-out pool, shared across check() calls.
  ThreadPool &pool() const { return *Pool; }

  /// One-time substrate construction statistics (`andersen-*` counters
  /// and the solve wall time), recorded when the session was built.
  const Stats &substrateStats() const { return SubstrateStats; }

  /// Reachable-method count (Table 1's Mtds) and statement count over
  /// reachable methods (Table 1's Stmts).
  size_t reachableMethods() const { return CG->numReachable(); }
  size_t reachableStmts() const;

private:
  LeakChecker(std::unique_ptr<Program> P, LeakOptions Opts);

  std::unique_ptr<Program> P;
  LeakOptions Opts;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<Pag> G;
  std::unique_ptr<AndersenPta> Base;
  std::unique_ptr<CflPta> Cfl;
  std::unique_ptr<EscapeAnalysis> Esc;
  std::unique_ptr<ThreadPool> Pool;
  Stats SubstrateStats;
};

} // namespace lc

#endif // LC_CORE_LEAKCHECKER_H
