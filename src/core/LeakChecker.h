//===-- LeakChecker.h - End-to-end driver ----------------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: compile MJ source (or accept a
/// prebuilt Program), build the analysis substrate once (call graph, PAG,
/// Andersen, demand-driven CFL), and check user-specified loops/regions.
/// Mirrors how the paper's tool is used: "once the important loops and
/// code regions are specified by the tool user, the rest of the approach
/// is fully automated."
///
//===----------------------------------------------------------------------===//

#ifndef LC_CORE_LEAKCHECKER_H
#define LC_CORE_LEAKCHECKER_H

#include "escape/EscapeAnalysis.h"
#include "leak/LeakAnalysis.h"
#include "pta/Summaries.h"
#include "service/Request.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <memory>
#include <optional>
#include <string>

namespace lc {

/// One LeakChecker session over a fixed program.
class LeakChecker {
public:
  /// Compiles \p Source; returns nullptr (and fills \p Diags) on errors.
  static std::unique_ptr<LeakChecker>
  fromSource(std::string_view Source, DiagnosticEngine &Diags,
             LeakOptions Opts = {});

  /// Wraps an already-built program (takes ownership).
  static std::unique_ptr<LeakChecker> fromProgram(std::unique_ptr<Program> P,
                                                  LeakOptions Opts = {});

  /// Incremental session construction for the edit workload: when
  /// \p NewSource differs from \p Prev's program only in method bodies,
  /// builds the new session by patching a *clone* of the program and
  /// carrying the expensive substrate across the edit -- the Andersen
  /// fixed point is re-solved from \p Prev's (consuming it), unchanged
  /// method summaries are reused via their stable-coordinate region
  /// fingerprints, and the CFL memo adopts every cached entry whose
  /// backward cone avoids the edit. Returns nullptr (with \p Diags
  /// explaining why) when the edit is not body-level patchable or the
  /// changed bodies no longer compile; \p Prev is then untouched and
  /// still serves its own source. On success \p Prev's solver state has
  /// been consumed and the session must be discarded. Reports from the
  /// patched session are byte-identical to a from-scratch build of
  /// \p NewSource (debug builds assert the program, points-to sets,
  /// summaries, and memo results against scratch rebuilds).
  static std::unique_ptr<LeakChecker> patchFrom(LeakChecker &Prev,
                                                std::string_view NewSource,
                                                DiagnosticEngine &Diags);

  /// The session's single analysis entry point: resolves the request's
  /// loop set (explicit labels, or every labeled reachable loop for
  /// AllLabeled), runs each loop under the request's validated options and
  /// deadline, and returns a typed outcome. Degradations come back as
  /// statuses, never as empty vectors: an unknown label yields LoopNotFound
  /// with the program's known labels, an expired deadline yields
  /// DeadlineExpired carrying the completed prefix (the token is polled
  /// between loops, and within a loop between per-site query batches), an
  /// explicit cancel() yields Cancelled. The outcome carries each result's
  /// rendered report text, so callers byte-compare against single-shot
  /// runs without re-rendering.
  AnalysisOutcome run(const AnalysisRequest &R) const;

  /// Labels of every labeled loop/region, in loop order (what a
  /// LoopNotFound outcome reports as KnownLabels).
  std::vector<std::string> knownLabels() const;

  const Program &program() const { return *P; }
  const CallGraph &callGraph() const { return *CG; }
  const Pag &pag() const { return *G; }
  const AndersenPta &andersen() const { return *Base; }
  const CflPta &cfl() const { return *Cfl; }
  /// The method-summary table the CFL solver composes, or nullptr when
  /// the session was built with LeakOptions::Summaries off.
  const Summaries *summaries() const { return Sums.get(); }
  const EscapeAnalysis &escape() const { return *Esc; }
  const LeakOptions &options() const { return Opts; }
  /// The session's query fan-out pool, shared across run() calls.
  ThreadPool &pool() const { return *Pool; }

  /// One-time substrate construction statistics (`andersen-*` counters
  /// and the solve wall time), recorded when the session was built.
  const Stats &substrateStats() const { return SubstrateStats; }

  /// Reachable-method count (Table 1's Mtds) and statement count over
  /// reachable methods (Table 1's Stmts).
  size_t reachableMethods() const { return CG->numReachable(); }
  size_t reachableStmts() const;

private:
  LeakChecker(std::unique_ptr<Program> P, LeakOptions Opts);

  /// Tag ctor for patchFrom: members are filled piecewise because the
  /// patched substrate interleaves old-session reads with new-session
  /// construction (seed collection must precede the Andersen steal).
  struct PatchTag {};
  explicit LeakChecker(PatchTag) {}

  /// The one place a loop is actually analyzed; run() funnels every
  /// request's loops through here.
  LeakAnalysisResult runOne(LoopId Loop, const LeakOptions &O) const;

  std::unique_ptr<Program> P;
  LeakOptions Opts;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<Pag> G;
  std::unique_ptr<AndersenPta> Base;
  std::unique_ptr<Summaries> Sums;
  std::unique_ptr<CflPta> Cfl;
  std::unique_ptr<EscapeAnalysis> Esc;
  std::unique_ptr<ThreadPool> Pool;
  Stats SubstrateStats;
};

} // namespace lc

#endif // LC_CORE_LEAKCHECKER_H
