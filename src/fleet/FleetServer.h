//===-- FleetServer.h - TCP front end for the analysis fleet ---*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--listen` front end: a single-threaded poll loop accepting many
/// concurrent TCP connections speaking the JSONL wire format (the same
/// lines `--serve` reads on stdin), routing each request over a
/// consistent-hash ring of supervised worker processes, and multiplexing
/// the answers back. The front end is deliberately thin -- it parses and
/// screens requests but never analyzes; all engine work happens in
/// workers, so one slow analysis never blocks accepting, rejecting, or
/// answering other connections.
///
/// Degradation is typed, never silent (docs/API.md "Fleet deployment"):
///
///  - Admission control bounds the fleet-wide in-flight queue. A request
///    arriving past `MaxInflight` is answered immediately with an
///    `overloaded` outcome -- rejection is a fast path that touches no
///    worker.
///  - Per-connection backpressure pauses *reading* a connection whose
///    admitted-but-unanswered count or output backlog passes its bound,
///    so one firehose client is flow-controlled by TCP instead of
///    buffering without bound in the front end.
///  - A worker crash answers that worker's in-flight requests with
///    `worker-lost` outcomes and respawns the slot in place; the ring
///    never changes shape, so other programs' warmth is untouched.
///  - v1 wire lines (no `"v"` key) are rejected with
///    `unsupported-version`; the fleet speaks only envelope v2.
///
/// The envelope, routing and warmth contract, and the event taxonomy
/// (connection-open/close, fleet-admit/-reject/-route/-complete,
/// worker-spawn/-exit) are documented in docs/API.md and
/// docs/OBSERVABILITY.md. `{"control":"stats"}` aggregates every live
/// worker's ServiceSnapshot into one `fleet-stats` line;
/// `{"control":"health"}` answers from front-end counters alone.
///
//===----------------------------------------------------------------------===//

#ifndef LC_FLEET_FLEETSERVER_H
#define LC_FLEET_FLEETSERVER_H

#include "fleet/Framing.h"
#include "fleet/HashRing.h"
#include "fleet/WorkerPool.h"
#include "service/EventLog.h"

#include <chrono>
#include <deque>
#include <list>
#include <string>
#include <vector>

namespace lc {

struct FleetOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;    ///< 0 = ephemeral; read the bound port via port()
  size_t Workers = 3;   ///< worker processes (= ring slots)
  size_t MaxInflight = 64;      ///< fleet-wide admitted-but-unanswered bound
  size_t MaxPerConnection = 16; ///< per-connection in-flight bound (pauses reads)
  size_t MaxLineBytes = kDefaultMaxLineBytes; ///< request line length cap
  /// Budget for the whole deployment; split evenly across workers so the
  /// fleet respects the same bound one process would.
  uint64_t MemoryBudgetBytes = 512ull << 20;
  size_t MaxSessionsPerWorker = 8;
  bool Attribution = true;
};

class FleetServer {
public:
  /// Front-end counters, exposed for the bench and tests. All are
  /// monotonic except Inflight/Connections (gauges).
  struct Counters {
    uint64_t Accepted = 0;     ///< connections accepted
    uint64_t Connections = 0;  ///< currently open connections
    uint64_t Requests = 0;     ///< request lines seen (any disposition)
    uint64_t Admitted = 0;     ///< admitted into the in-flight queue
    uint64_t Rejected = 0;     ///< typed rejections (all reasons)
    uint64_t RejectedOverload = 0;
    uint64_t RejectedVersion = 0;
    uint64_t RejectedInvalid = 0;
    uint64_t Completed = 0;    ///< admitted requests answered (any status)
    uint64_t WorkerLost = 0;   ///< completions degraded by a worker death
    uint64_t Inflight = 0;
    uint64_t PeakInflight = 0;
    uint64_t WorkerRespawns = 0;
  };

  explicit FleetServer(FleetOptions Opts, ServiceEventLog *Log = nullptr);
  ~FleetServer();

  FleetServer(const FleetServer &) = delete;
  FleetServer &operator=(const FleetServer &) = delete;

  /// Binds, listens, and forks the workers. Call before any other thread
  /// exists when possible (fork is cheapest and safest from a
  /// single-threaded process). False + \p Error on failure.
  bool start(std::string &Error);

  /// The bound port (resolves Port=0 ephemeral binds).
  uint16_t port() const { return BoundPort; }

  /// Serves until stop(). Runs poll() on one thread; never throws.
  void runLoop();

  /// Signal-safe shutdown request: wakes the loop via a self-pipe. The
  /// loop finishes writing nothing further, closes client connections,
  /// closes worker request pipes (EOF = worker shutdown), and reaps.
  void stop();

  const Counters &counters() const { return Stats; }
  /// Live worker pids by slot (tests kill one to exercise supervision).
  std::vector<pid_t> workerPids() const;

private:
  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    std::string In;       ///< bytes read, not yet split into lines
    std::string Out;      ///< bytes to write
    size_t Pending = 0;   ///< admitted requests not yet answered
    bool DiscardLine = false; ///< current line blew MaxLineBytes
    bool Gone = false;    ///< flagged for removal after the poll pass
  };

  /// What the front end is waiting on from one worker, in send order.
  struct PendingReply {
    enum Kind : uint8_t { Request, Stats } K = Request;
    uint64_t ConnId = 0;
    std::string ReqId;          ///< Request only
    uint64_t CollectToken = 0;  ///< Stats only
    std::chrono::steady_clock::time_point Sent;
  };

  struct WorkerState {
    std::string OutBuf; ///< frames not yet written to the request pipe
    FrameReader Reader;
    std::deque<PendingReply> Fifo;
  };

  /// One in-progress {"control":"stats"} aggregation.
  struct StatsCollect {
    uint64_t Token = 0;
    uint64_t ConnId = 0;
    size_t Remaining = 0;
    /// (slot, rendered worker snapshot), in reply order.
    std::vector<std::pair<size_t, std::string>> Replies;
  };

  void handleListen();
  void handleConnReadable(Conn &C);
  void handleConnWritable(Conn &C);
  void processLine(Conn &C, const std::string &Line);
  void handleControl(Conn &C, const std::string &Verb);
  void handleWorkerReadable(size_t Slot);
  void handleWorkerFrame(size_t Slot, Frame &F);
  /// EOF/error on a worker's response pipe: collect the child, answer
  /// its in-flight requests with worker-lost, respawn the slot.
  void markWorkerDead(size_t Slot);
  void flushWorkerOut(size_t Slot);

  void admitRequest(Conn &C, const std::string &Line,
                    const RequestSourceRef &Ref, const std::string &ReqId);
  void rejectRequest(Conn &C, const std::string &ReqId, OutcomeStatus Status,
                     const char *Reason, std::string Why);
  void sendLine(Conn &C, const std::string &Line);
  void finishCollect(StatsCollect &SC);
  std::string renderFleetStats(const StatsCollect &SC) const;
  std::string renderFleetHealth() const;
  Conn *findConn(uint64_t Id);
  void closeConn(Conn &C);
  uint64_t uptimeUs() const;

  FleetOptions Opts;
  ServiceEventLog *Log = nullptr;
  Counters Stats;
  HashRing Ring;
  WorkerPool Pool;
  std::vector<WorkerState> WorkerIo;
  std::list<Conn> Conns; ///< stable references across accept/close
  std::vector<StatsCollect> Collects;
  int ListenFd = -1;
  int WakeRead = -1;  ///< self-pipe read end, in the poll set
  int WakeWrite = -1; ///< written by stop() (async-signal-safe)
  uint16_t BoundPort = 0;
  uint64_t NextConnId = 1;
  uint64_t NextCollectToken = 1;
  bool Stopping = false;
  std::chrono::steady_clock::time_point Epoch;
};

} // namespace lc

#endif // LC_FLEET_FLEETSERVER_H
