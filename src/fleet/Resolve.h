//===-- Resolve.h - Wire request -> engine request resolution --*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolving a parsed request's program reference (bundled subject name,
/// file path, or inline source) into `AnalysisRequest::Source` /
/// `ProgramName`. This is the one place wire-side program naming touches
/// the filesystem and the subject table; the service layer itself only
/// ever sees inline source. It used to live in the CLI driver -- fleet
/// workers run the same resolution, so it moved here where the CLI, the
/// worker loop, and tests share one definition (and one behavior for
/// subject defaults: a subject's thread-modeling default is OR-ed into
/// the request options, exactly like single-shot --subject).
///
//===----------------------------------------------------------------------===//

#ifndef LC_FLEET_RESOLVE_H
#define LC_FLEET_RESOLVE_H

#include "service/ServiceJson.h"

#include <string>

namespace lc {

/// Fills \p R.Source / \p R.ProgramName from \p Ref. For a subject
/// reference, defaults the loop set to the subject's evaluation loop
/// when the request named none, and ORs the subject's thread-modeling
/// default into the options. Returns false with \p Error set on an
/// unknown subject or unreadable file.
bool resolveRequestSource(const RequestSourceRef &Ref, AnalysisRequest &R,
                          std::string &Error);

} // namespace lc

#endif // LC_FLEET_RESOLVE_H
