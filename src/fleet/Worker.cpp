//===-- Worker.cpp --------------------------------------------------------===//

#include "fleet/Worker.h"

#include "fleet/Framing.h"
#include "fleet/Resolve.h"
#include "service/AnalysisService.h"
#include "service/ServiceJson.h"
#include "service/Snapshot.h"
#include "support/Json.h"

using namespace lc;

namespace {

AnalysisOutcome invalidRequest(std::string Id, std::string Why) {
  AnalysisOutcome O;
  O.Id = std::move(Id);
  O.Status = OutcomeStatus::InvalidRequest;
  O.Diagnostics = std::move(Why);
  O.SubstrateBuilt = false;
  return O;
}

/// One request line -> one outcome. The front end already screened the
/// envelope and the request shape, so failures here are either races it
/// cannot see (a file deleted between screening and resolution) or
/// defense in depth; both degrade to typed outcomes, never a dead
/// worker.
AnalysisOutcome serveLine(AnalysisService &Svc, const std::string &Line) {
  json::Value Doc;
  std::string Error;
  if (!json::parse(Line, Doc, Error))
    return invalidRequest("", Error);
  AnalysisRequest R;
  RequestSourceRef Ref;
  if (!parseAnalysisRequest(Doc, R, Ref, Error) ||
      !resolveRequestSource(Ref, R, Error))
    return invalidRequest(R.Id, Error);
  return Svc.run(R);
}

} // namespace

int lc::fleetWorkerMain(int InFd, int OutFd, const WorkerConfig &Config) {
  ServiceOptions SO;
  SO.MemoryBudgetBytes = Config.MemoryBudgetBytes;
  SO.MaxSessions = Config.MaxSessions;
  SO.Attribution = Config.Attribution;
  AnalysisService Svc(SO);

  Frame F;
  int RC;
  while ((RC = readFrameBlocking(InFd, F)) == 1) {
    switch (F.Type) {
    case FrameType::Request: {
      AnalysisOutcome O = serveLine(Svc, F.Payload);
      if (!writeFrame(OutFd, FrameType::Outcome, renderOutcomeJson(O)))
        return 1; // front end gone; nothing left to serve
      break;
    }
    case FrameType::StatsQuery: {
      ServiceSnapshot Snap = Svc.snapshot();
      if (!writeFrame(OutFd, FrameType::StatsReply, renderSnapshotJson(Snap)))
        return 1;
      break;
    }
    case FrameType::Outcome:
    case FrameType::StatsReply:
      return 1; // reply frames never flow toward a worker
    }
  }
  return RC == 0 ? 0 : 1;
}
