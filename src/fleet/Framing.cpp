//===-- Framing.cpp -------------------------------------------------------===//

#include "fleet/Framing.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace lc;

namespace {

bool validType(uint8_t T) {
  return T >= uint8_t(FrameType::Request) && T <= uint8_t(FrameType::StatsReply);
}

/// Reads exactly N bytes. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on mid-read EOF or error.
int readFull(int Fd, char *Out, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Out + Got, N - Got);
    if (R > 0) {
      Got += static_cast<size_t>(R);
      continue;
    }
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (errno == EINTR)
      continue;
    return -1;
  }
  return 1;
}

} // namespace

void lc::appendFrame(std::string &Out, FrameType Type,
                     std::string_view Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  char Hdr[5];
  Hdr[0] = static_cast<char>(Type);
  Hdr[1] = static_cast<char>(Len & 0xff);
  Hdr[2] = static_cast<char>((Len >> 8) & 0xff);
  Hdr[3] = static_cast<char>((Len >> 16) & 0xff);
  Hdr[4] = static_cast<char>((Len >> 24) & 0xff);
  Out.append(Hdr, 5);
  Out.append(Payload.data(), Payload.size());
}

bool lc::writeFrame(int Fd, FrameType Type, std::string_view Payload) {
  std::string Buf;
  Buf.reserve(Payload.size() + 5);
  appendFrame(Buf, Type, Payload);
  size_t Sent = 0;
  while (Sent < Buf.size()) {
    ssize_t W = ::write(Fd, Buf.data() + Sent, Buf.size() - Sent);
    if (W > 0) {
      Sent += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && (errno == EINTR || errno == EAGAIN))
      continue;
    return false;
  }
  return true;
}

int lc::readFrameBlocking(int Fd, Frame &F) {
  char Hdr[5];
  int RC = readFull(Fd, Hdr, 5);
  if (RC <= 0)
    return RC;
  uint8_t T = static_cast<uint8_t>(Hdr[0]);
  uint32_t Len = static_cast<uint8_t>(Hdr[1]) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[2])) << 8) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[3])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[4])) << 24);
  if (!validType(T) || Len > kMaxFramePayload)
    return -1;
  F.Type = static_cast<FrameType>(T);
  F.Payload.assign(Len, '\0');
  if (Len && readFull(Fd, F.Payload.data(), Len) != 1)
    return -1;
  return 1;
}

bool FrameReader::pop(Frame &F) {
  if (Bad)
    return false;
  if (Buf.size() - Off < 5)
    return false;
  const char *P = Buf.data() + Off;
  uint8_t T = static_cast<uint8_t>(P[0]);
  uint32_t Len = static_cast<uint8_t>(P[1]) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(P[2])) << 8) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(P[3])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(P[4])) << 24);
  if (!validType(T) || Len > kMaxFramePayload) {
    Bad = true;
    return false;
  }
  if (Buf.size() - Off - 5 < Len)
    return false; // torn frame: wait for more bytes
  F.Type = static_cast<FrameType>(T);
  F.Payload.assign(Buf, Off + 5, Len);
  Off += 5 + size_t(Len);
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound across a long-lived pipe.
  if (Off > 4096 && Off * 2 >= Buf.size()) {
    Buf.erase(0, Off);
    Off = 0;
  }
  return true;
}
