//===-- Framing.h - Length-framed pipe protocol ----------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end <-> worker pipe protocol: each message is one frame of
///
///   [1 byte type][4 bytes payload length, little-endian][payload]
///
/// Four frame types exist. Request carries one raw JSONL request line
/// (forwarded verbatim, so the worker parses exactly the bytes the
/// client sent); Outcome carries one rendered outcome line back.
/// StatsQuery (empty payload) asks a worker for its live
/// ServiceSnapshot; StatsReply carries the rendered snapshot JSON. A
/// worker answers frames strictly in order, which is the correlation
/// contract: the front end keeps a FIFO of what it sent each worker and
/// pairs replies positionally.
///
/// Two consumption styles match the two sides: workers block on their
/// request pipe (readFrameBlocking), the poll-driven front end feeds
/// whatever bytes arrived into an incremental FrameReader and pops
/// complete frames -- torn frames are the normal case there, not an
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef LC_FLEET_FRAMING_H
#define LC_FLEET_FRAMING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lc {

enum class FrameType : uint8_t {
  Request = 1,    ///< one raw request line, front end -> worker
  Outcome = 2,    ///< one rendered outcome line, worker -> front end
  StatsQuery = 3, ///< snapshot request, empty payload
  StatsReply = 4, ///< rendered ServiceSnapshot JSON
};

/// Hard cap on one frame's payload. Far above any real outcome line; a
/// length past it means a corrupt stream, not a big request.
inline constexpr size_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType Type = FrameType::Request;
  std::string Payload;
};

/// Writes one complete frame to \p Fd, retrying on EINTR and short
/// writes (the fd may be blocking or not; on EAGAIN it spins via
/// poll-free retry, so only workers -- whose pipe fds stay blocking --
/// should use it). Returns false on a write error (EPIPE when the peer
/// died).
bool writeFrame(int Fd, FrameType Type, std::string_view Payload);

/// Serializes a frame header+payload into \p Out (the front end appends
/// to a per-worker buffer and drains it under POLLOUT).
void appendFrame(std::string &Out, FrameType Type, std::string_view Payload);

/// Blocking read of one complete frame. Returns 1 on a frame, 0 on
/// clean EOF at a frame boundary, -1 on error (mid-frame EOF, bad type,
/// oversized length, read failure).
int readFrameBlocking(int Fd, Frame &F);

/// Incremental decoder for the poll-driven side: feed() whatever bytes
/// arrived, pop() complete frames until it returns false. A protocol
/// violation (unknown type byte, oversized length) poisons the reader;
/// the caller treats the worker as lost.
class FrameReader {
public:
  void feed(const char *Data, size_t N) { Buf.append(Data, N); }

  /// Pops the next complete frame into \p F. Returns false when no
  /// complete frame is buffered (or the stream is poisoned -- check
  /// bad()).
  bool pop(Frame &F);

  bool bad() const { return Bad; }
  /// Bytes buffered but not yet popped (zero at a frame boundary).
  size_t pendingBytes() const { return Buf.size() - Off; }

private:
  std::string Buf;
  size_t Off = 0; ///< consumed prefix; compacted periodically
  bool Bad = false;
};

} // namespace lc

#endif // LC_FLEET_FRAMING_H
