//===-- WorkerPool.cpp ----------------------------------------------------===//

#include "fleet/WorkerPool.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace lc;

namespace {

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Closes every descriptor the child inherited except its two pipe ends
/// and the standard streams. This is what makes pipe EOF a reliable
/// shutdown signal: no sibling worker may keep a request pipe's write
/// end alive.
void closeInheritedFds(int KeepA, int KeepB) {
  rlimit RL{};
  int Max = 1024;
  if (::getrlimit(RLIMIT_NOFILE, &RL) == 0 && RL.rlim_cur != RLIM_INFINITY)
    Max = static_cast<int>(RL.rlim_cur);
  if (Max > 65536)
    Max = 65536;
  for (int Fd = 3; Fd < Max; ++Fd)
    if (Fd != KeepA && Fd != KeepB)
      ::close(Fd);
}

} // namespace

bool WorkerPool::spawnInto(Slot &S, std::string &Error) {
  int Req[2], Resp[2]; // [0] read end, [1] write end
  if (::pipe(Req) != 0) {
    Error = "pipe failed: ";
    Error += std::strerror(errno);
    return false;
  }
  if (::pipe(Resp) != 0) {
    Error = "pipe failed: ";
    Error += std::strerror(errno);
    ::close(Req[0]);
    ::close(Req[1]);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Error = "fork failed: ";
    Error += std::strerror(errno);
    ::close(Req[0]);
    ::close(Req[1]);
    ::close(Resp[0]);
    ::close(Resp[1]);
    return false;
  }
  if (Pid == 0) {
    // Child: keep only this worker's pipe ends, restore default signal
    // dispositions (the front end's handlers write to a self-pipe the
    // child just closed), run the loop, and _exit without unwinding the
    // inherited process state.
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGPIPE, SIG_IGN);
    closeInheritedFds(Req[0], Resp[1]);
    int RC = fleetWorkerMain(Req[0], Resp[1], Config);
    ::_exit(RC);
  }
  ::close(Req[0]);
  ::close(Resp[1]);
  S.Pid = Pid;
  S.ReqFd = Req[1];
  S.RespFd = Resp[0];
  S.Alive = true;
  S.Spawns++;
  return true;
}

bool WorkerPool::start(size_t N, const WorkerConfig &C, std::string &Error) {
  Config = C;
  Slots.assign(N, Slot());
  for (size_t I = 0; I < N; ++I)
    if (!spawnInto(Slots[I], Error)) {
      shutdown();
      return false;
    }
  return true;
}

bool WorkerPool::respawn(size_t I, std::string &Error) {
  Slot &S = Slots[I];
  closeFd(S.ReqFd);
  closeFd(S.RespFd);
  S.Alive = false;
  return spawnInto(S, Error);
}

void WorkerPool::collect(size_t I) {
  Slot &S = Slots[I];
  if (!S.Alive)
    return;
  S.Alive = false;
  closeFd(S.ReqFd);
  closeFd(S.RespFd);
  if (S.Pid > 0) {
    int Status = 0;
    while (::waitpid(S.Pid, &Status, 0) < 0 && errno == EINTR) {
    }
    S.Pid = -1;
  }
}

void WorkerPool::shutdown() {
  // Close every request pipe first so all workers see EOF and drain in
  // parallel, then collect them.
  for (Slot &S : Slots)
    closeFd(S.ReqFd);
  for (Slot &S : Slots) {
    if (S.Pid > 0) {
      int Status = 0;
      while (::waitpid(S.Pid, &Status, 0) < 0 && errno == EINTR) {
      }
      S.Pid = -1;
    }
    S.Alive = false;
    closeFd(S.RespFd);
  }
}
