//===-- HashRing.cpp ------------------------------------------------------===//

#include "fleet/HashRing.h"

#include <algorithm>

using namespace lc;

uint64_t lc::fleetHash(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t lc::fleetRouteKey(const RequestSourceRef &Ref) {
  if (!Ref.Subject.empty())
    return fleetHash("subject:" + Ref.Subject);
  if (!Ref.File.empty())
    return fleetHash("file:" + Ref.File);
  return fleetHash("source:" + Ref.Source);
}

HashRing::HashRing(size_t Slots, unsigned VirtualNodes) : SlotCount(Slots) {
  Points.reserve(Slots * VirtualNodes);
  for (size_t S = 0; S < Slots; ++S)
    for (unsigned V = 0; V < VirtualNodes; ++V) {
      std::string P = "slot:" + std::to_string(S) + ":" + std::to_string(V);
      Points.emplace_back(fleetHash(P), static_cast<uint32_t>(S));
    }
  std::sort(Points.begin(), Points.end());
}

size_t HashRing::route(uint64_t Key) const {
  auto It = std::lower_bound(
      Points.begin(), Points.end(), Key,
      [](const std::pair<uint64_t, uint32_t> &P, uint64_t K) {
        return P.first < K;
      });
  if (It == Points.end())
    It = Points.begin(); // wrap around the circle
  return It->second;
}
