//===-- HashRing.h - Consistent-hash request routing -----------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routing for the analysis fleet: each request is hashed by the
/// *program it names* and routed over a consistent-hash ring to one of N
/// worker slots, so every request for the same program lands on the same
/// worker -- that worker's session cache stays warm for it, and
/// incremental patches keep applying across a scaled-out deployment.
///
/// The ring hashes (slot, virtual-node) pairs onto a 64-bit circle with
/// many virtual nodes per slot; a key routes to the first point at or
/// after it (wrapping). Slots are *positions*, not processes: when a
/// worker crashes and is respawned it reoccupies its slot, so the
/// routing function never changes over a fleet's lifetime -- only cache
/// warmth is lost, and only on the slot that died.
///
/// The route key deliberately covers the request's unresolved program
/// reference (subject name, file path, or inline source text): the front
/// end never reads files or resolves subjects, workers do.
///
//===----------------------------------------------------------------------===//

#ifndef LC_FLEET_HASHRING_H
#define LC_FLEET_HASHRING_H

#include "service/ServiceJson.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace lc {

/// FNV-1a over a byte string; the same mixing the service layer uses for
/// session keys, so routing and caching agree on what "same program"
/// means.
uint64_t fleetHash(std::string_view Bytes);

/// The 64-bit route key of one request: a hash of its program reference,
/// domain-tagged so a subject named "X" and a file named "X" never
/// collide by construction.
uint64_t fleetRouteKey(const RequestSourceRef &Ref);

class HashRing {
public:
  /// Builds a ring over \p Slots worker slots with \p VirtualNodes ring
  /// points per slot (more points = smoother key distribution).
  explicit HashRing(size_t Slots, unsigned VirtualNodes = 64);

  size_t slots() const { return SlotCount; }

  /// The slot \p Key routes to. Total function: every key routes.
  size_t route(uint64_t Key) const;

private:
  size_t SlotCount;
  /// (point hash, slot) sorted by hash; route is a binary search.
  std::vector<std::pair<uint64_t, uint32_t>> Points;
};

} // namespace lc

#endif // LC_FLEET_HASHRING_H
