//===-- Worker.h - Fleet worker process loop -------------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The body of one fleet worker process: a blocking frame loop over the
/// two pipes the front end gave it, wrapping one ordinary
/// `AnalysisService` -- the service is reused *unchanged*; the worker is
/// nothing but the framing glue around it. Each Request frame carries
/// one raw JSONL request line; the worker parses it with the same strict
/// v2 parser the front end validated it with, resolves the program
/// reference, runs the service, and answers one Outcome frame holding
/// the rendered outcome line. StatsQuery frames answer the worker's live
/// ServiceSnapshot. Frames are answered strictly in order, which is the
/// front end's correlation contract.
///
/// The loop exits cleanly on EOF of the request pipe (the front end
/// closing it is the shutdown signal) and with an error on any protocol
/// violation.
///
//===----------------------------------------------------------------------===//

#ifndef LC_FLEET_WORKER_H
#define LC_FLEET_WORKER_H

#include <cstddef>
#include <cstdint>

namespace lc {

/// Per-worker service sizing, decided by the front end. The fleet splits
/// the deployment's memory budget evenly across workers so N workers
/// together respect the same bound one process would.
struct WorkerConfig {
  uint64_t MemoryBudgetBytes = 512ull << 20;
  size_t MaxSessions = 8;
  bool Attribution = true;
};

/// Runs the worker loop until EOF on \p InFd. Returns the process exit
/// code (0 clean shutdown, 1 protocol error). The caller -- a freshly
/// forked child -- must _exit() with it rather than return through main.
int fleetWorkerMain(int InFd, int OutFd, const WorkerConfig &Config);

} // namespace lc

#endif // LC_FLEET_WORKER_H
