//===-- WorkerPool.h - Worker process supervision --------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spawning and supervising the fleet's worker processes. Each slot owns
/// one forked child running `fleetWorkerMain` over a pair of pipes; the
/// pool can reap exited children without blocking and respawn a slot in
/// place -- the slot index is what the consistent-hash ring routes to,
/// so a respawned worker inherits its predecessor's routing (and
/// rebuilds its cache warmth on demand).
///
/// Workers are forked, not exec'd: the binary already contains the whole
/// engine, and the front end forks either before it serves traffic or
/// from its single-threaded poll loop, which keeps fork safe. Each child
/// closes every inherited descriptor except its own two pipe ends --
/// crucially including the *other* workers' request-pipe write ends,
/// otherwise closing a pipe at shutdown would not deliver EOF.
///
//===----------------------------------------------------------------------===//

#ifndef LC_FLEET_WORKERPOOL_H
#define LC_FLEET_WORKERPOOL_H

#include "fleet/Worker.h"

#include <string>
#include <sys/types.h>
#include <vector>

namespace lc {

class WorkerPool {
public:
  struct Slot {
    pid_t Pid = -1;
    int ReqFd = -1;  ///< front end writes Request/StatsQuery frames here
    int RespFd = -1; ///< front end reads Outcome/StatsReply frames here
    bool Alive = false;
    uint64_t Spawns = 0; ///< times this slot has been (re)spawned
  };

  WorkerPool() = default;
  ~WorkerPool() { shutdown(); }

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Forks \p N workers with \p Config each. Returns false (with
  /// \p Error) if any fork or pipe fails; already-spawned workers are
  /// torn down again.
  bool start(size_t N, const WorkerConfig &Config, std::string &Error);

  /// Re-forks slot \p I (which must not be alive). The new child serves
  /// the same ring position with a cold cache.
  bool respawn(size_t I, std::string &Error);

  /// Declares slot \p I's child dead -- the supervisor saw EOF on its
  /// response pipe, so the process has exited. Collects the zombie
  /// (blocking, but the child is already gone) and closes the slot's
  /// pipes.
  void collect(size_t I);

  /// Closes all request pipes (EOF = worker shutdown signal) and waits
  /// for every child. Idempotent.
  void shutdown();

  size_t size() const { return Slots.size(); }
  Slot &slot(size_t I) { return Slots[I]; }
  const Slot &slot(size_t I) const { return Slots[I]; }

private:
  bool spawnInto(Slot &S, std::string &Error);

  std::vector<Slot> Slots;
  WorkerConfig Config;
};

} // namespace lc

#endif // LC_FLEET_WORKERPOOL_H
