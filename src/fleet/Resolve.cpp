//===-- Resolve.cpp -------------------------------------------------------===//

#include "fleet/Resolve.h"

#include "subjects/Subjects.h"

#include <fstream>
#include <sstream>

using namespace lc;

namespace {

/// Looks a subject up without subjects::byName's abort-on-unknown.
const subjects::Subject *findSubject(const std::string &Name) {
  for (const subjects::Subject &S : subjects::all())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

} // namespace

bool lc::resolveRequestSource(const RequestSourceRef &Ref, AnalysisRequest &R,
                              std::string &Error) {
  if (!Ref.Subject.empty()) {
    const subjects::Subject *S = findSubject(Ref.Subject);
    if (!S) {
      Error = "unknown subject \"" + Ref.Subject + "\" (see --list-subjects)";
      return false;
    }
    R.Source = S->Source;
    R.ProgramName = S->Name;
    if (R.Loops.Labels.empty() && !R.Loops.AllLabeled)
      R.Loops = LoopSet::of({S->LoopLabel});
    if (S->Options.ModelThreads && !R.Options.leakOptions().ModelThreads) {
      LeakOptions L = R.Options.leakOptions();
      L.ModelThreads = true;
      // fromLegacy of an already-validated configuration cannot fail.
      R.Options = SessionOptionsBuilder().fromLegacy(L).build().value();
    }
    return true;
  }
  if (!Ref.File.empty()) {
    if (!readFile(Ref.File, R.Source)) {
      Error = "cannot open \"" + Ref.File + "\"";
      return false;
    }
    R.ProgramName = Ref.File;
    return true;
  }
  R.Source = Ref.Source;
  R.ProgramName = "<inline>";
  return true;
}
