//===-- FleetServer.cpp ---------------------------------------------------===//

#include "fleet/FleetServer.h"

#include "support/Json.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lc;

namespace {

bool setNonblock(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Output backlog past which a connection's reads pause. Big enough for
/// a burst of full reports, small enough that a client that never reads
/// cannot balloon the front end.
constexpr size_t kMaxConnOutBytes = 4u << 20;

/// Pulls the status name out of a rendered outcome line without a full
/// JSON parse. Safe as a byte search: json::quote escapes every '"' in
/// string values as '\"', so the unescaped sequence `,"status":"` can
/// only be the key itself.
std::string_view outcomeLineStatus(std::string_view Line) {
  size_t P = Line.find(",\"status\":\"");
  if (P == std::string_view::npos)
    return {};
  P += 11;
  size_t E = Line.find('"', P);
  if (E == std::string_view::npos)
    return {};
  return Line.substr(P, E - P);
}

std::string renderDegradedOutcome(const std::string &Id, OutcomeStatus S,
                                  std::string Why) {
  AnalysisOutcome O;
  O.Id = Id;
  O.Status = S;
  O.Diagnostics = std::move(Why);
  O.SubstrateBuilt = false;
  return renderOutcomeJson(O);
}

} // namespace

FleetServer::FleetServer(FleetOptions O, ServiceEventLog *EventLog)
    : Opts(std::move(O)), Log(EventLog),
      Ring(Opts.Workers ? Opts.Workers : 1),
      Epoch(std::chrono::steady_clock::now()) {}

FleetServer::~FleetServer() {
  for (Conn &C : Conns)
    closeFd(C.Fd);
  Conns.clear();
  closeFd(ListenFd);
  closeFd(WakeRead);
  closeFd(WakeWrite);
  // Pool's destructor shuts the workers down.
}

uint64_t FleetServer::uptimeUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

bool FleetServer::start(std::string &Error) {
  if (Opts.Workers == 0) {
    Error = "--workers must be at least 1";
    return false;
  }
  // A dead client mid-write must be an EPIPE errno, not a fatal signal.
  ::signal(SIGPIPE, SIG_IGN);

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket failed: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "cannot parse listen host \"" + Opts.Host + "\" (IPv4 only)";
    closeFd(ListenFd);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Error = std::string("bind failed: ") + std::strerror(errno);
    closeFd(ListenFd);
    return false;
  }
  if (::listen(ListenFd, 128) != 0) {
    Error = std::string("listen failed: ") + std::strerror(errno);
    closeFd(ListenFd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  setNonblock(ListenFd);

  int Wake[2];
  if (::pipe(Wake) != 0) {
    Error = std::string("pipe failed: ") + std::strerror(errno);
    closeFd(ListenFd);
    return false;
  }
  WakeRead = Wake[0];
  WakeWrite = Wake[1];
  setNonblock(WakeRead);
  setNonblock(WakeWrite);

  // Fork the workers last so they inherit as little as possible (and
  // close the rest). The budget splits evenly: N workers together
  // respect the bound one --serve process would.
  WorkerConfig WC;
  WC.MemoryBudgetBytes = Opts.MemoryBudgetBytes / Opts.Workers;
  WC.MaxSessions = Opts.MaxSessionsPerWorker;
  WC.Attribution = Opts.Attribution;
  if (!Pool.start(Opts.Workers, WC, Error)) {
    closeFd(ListenFd);
    closeFd(WakeRead);
    closeFd(WakeWrite);
    return false;
  }
  WorkerIo.assign(Opts.Workers, WorkerState());
  for (size_t I = 0; I < Pool.size(); ++I) {
    setNonblock(Pool.slot(I).ReqFd);
    setNonblock(Pool.slot(I).RespFd);
    if (Log)
      Log->event("worker-spawn")
          .num("worker", I)
          .num("pid", static_cast<uint64_t>(Pool.slot(I).Pid));
  }
  return true;
}

void FleetServer::stop() {
  if (WakeWrite >= 0) {
    char B = 1;
    // Best effort; the pipe full means a wake-up is already pending.
    (void)!::write(WakeWrite, &B, 1);
  }
}

std::vector<pid_t> FleetServer::workerPids() const {
  std::vector<pid_t> Pids;
  for (size_t I = 0; I < Pool.size(); ++I)
    Pids.push_back(Pool.slot(I).Alive ? Pool.slot(I).Pid : -1);
  return Pids;
}

FleetServer::Conn *FleetServer::findConn(uint64_t Id) {
  for (Conn &C : Conns)
    if (C.Id == Id && !C.Gone)
      return &C;
  return nullptr;
}

void FleetServer::sendLine(Conn &C, const std::string &Line) {
  if (C.Gone)
    return;
  C.Out += Line;
  C.Out += '\n';
  handleConnWritable(C); // opportunistic flush; EAGAIN just buffers
}

void FleetServer::closeConn(Conn &C) {
  if (C.Gone)
    return;
  C.Gone = true;
  if (Log)
    Log->event("connection-close").num("conn", C.Id);
  closeFd(C.Fd);
  Stats.Connections--;
  // In-flight requests from this connection stay in their worker FIFOs;
  // their outcomes are counted when they arrive and dropped on output.
}

void FleetServer::handleListen() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient accept error: poll again
    setNonblock(Fd);
    Conns.emplace_back();
    Conn &C = Conns.back();
    C.Fd = Fd;
    C.Id = NextConnId++;
    Stats.Accepted++;
    Stats.Connections++;
    if (Log)
      Log->event("connection-open").num("conn", C.Id);
  }
}

void FleetServer::handleConnWritable(Conn &C) {
  while (!C.Out.empty()) {
    ssize_t W = ::write(C.Fd, C.Out.data(), C.Out.size());
    if (W > 0) {
      C.Out.erase(0, static_cast<size_t>(W));
      continue;
    }
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    if (W < 0 && errno == EINTR)
      continue;
    closeConn(C); // EPIPE/reset: the client is gone
    return;
  }
}

void FleetServer::handleConnReadable(Conn &C) {
  char Buf[4096];
  for (;;) {
    ssize_t R = ::read(C.Fd, Buf, sizeof(Buf));
    if (R > 0) {
      C.In.append(Buf, static_cast<size_t>(R));
      // Split complete lines off; enforce the line cap on the residue.
      size_t Start = 0;
      for (;;) {
        size_t Nl = C.In.find('\n', Start);
        if (Nl == std::string::npos)
          break;
        if (C.DiscardLine) {
          // Tail of an oversized line, already answered: drop it.
          C.DiscardLine = false;
        } else if (Nl - Start > Opts.MaxLineBytes) {
          // A complete line can still blow the cap when it arrives
          // newline and all in one read -- same typed answer as the
          // residue check below, then resync at the newline.
          Stats.Requests++;
          rejectRequest(C, "", OutcomeStatus::InvalidRequest,
                        "invalid-request",
                        "request line exceeds " +
                            std::to_string(Opts.MaxLineBytes) + " bytes");
          if (C.Gone)
            return;
        } else {
          std::string Line = C.In.substr(Start, Nl - Start);
          if (!Line.empty() && Line.back() == '\r')
            Line.pop_back();
          processLine(C, Line);
          if (C.Gone)
            return;
        }
        Start = Nl + 1;
      }
      C.In.erase(0, Start);
      if (!C.DiscardLine && C.In.size() > Opts.MaxLineBytes) {
        Stats.Requests++;
        rejectRequest(C, "", OutcomeStatus::InvalidRequest, "invalid-request",
                      "request line exceeds " +
                          std::to_string(Opts.MaxLineBytes) + " bytes");
        C.In.clear();
        C.DiscardLine = true;
        if (C.Gone)
          return;
      } else if (C.DiscardLine) {
        C.In.clear();
      }
      // Backpressure: stop reading a connection that is saturated; the
      // poll-set builder re-enables POLLIN once it drains.
      if (C.Pending >= Opts.MaxPerConnection ||
          C.Out.size() >= kMaxConnOutBytes)
        return;
      continue;
    }
    if (R == 0) {
      closeConn(C); // client EOF (possibly mid-request; see FIFO note)
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    if (errno == EINTR)
      continue;
    closeConn(C);
    return;
  }
}

void FleetServer::rejectRequest(Conn &C, const std::string &ReqId,
                                OutcomeStatus Status, const char *Reason,
                                std::string Why) {
  Stats.Rejected++;
  if (Status == OutcomeStatus::Overloaded)
    Stats.RejectedOverload++;
  else if (Status == OutcomeStatus::UnsupportedVersion)
    Stats.RejectedVersion++;
  else
    Stats.RejectedInvalid++;
  if (Log)
    Log->event("fleet-reject")
        .num("conn", C.Id)
        .str("id", ReqId)
        .str("reason", Reason);
  sendLine(C, renderDegradedOutcome(ReqId, Status, std::move(Why)));
}

void FleetServer::admitRequest(Conn &C, const std::string &Line,
                               const RequestSourceRef &Ref,
                               const std::string &ReqId) {
  uint64_t Key = fleetRouteKey(Ref);
  size_t Slot = Ring.route(Key);
  if (!Pool.slot(Slot).Alive) {
    // Only reachable when a respawn failed (fork exhaustion); degrade
    // rather than queue against a worker that may never return.
    rejectRequest(C, ReqId, OutcomeStatus::WorkerLost, "worker-lost",
                  "worker " + std::to_string(Slot) + " is down");
    return;
  }
  Stats.Admitted++;
  Stats.Inflight++;
  if (Stats.Inflight > Stats.PeakInflight)
    Stats.PeakInflight = Stats.Inflight;
  C.Pending++;
  if (Log) {
    Log->event("fleet-admit").num("conn", C.Id).str("id", ReqId).num("worker",
                                                                     Slot);
    Log->event("fleet-route")
        .num("conn", C.Id)
        .str("id", ReqId)
        .num("worker", Slot)
        .num("key", Key);
  }
  WorkerState &W = WorkerIo[Slot];
  PendingReply P;
  P.K = PendingReply::Request;
  P.ConnId = C.Id;
  P.ReqId = ReqId;
  P.Sent = std::chrono::steady_clock::now();
  W.Fifo.push_back(std::move(P));
  appendFrame(W.OutBuf, FrameType::Request, Line);
  flushWorkerOut(Slot);
}

void FleetServer::processLine(Conn &C, const std::string &Line) {
  if (Line.find_first_not_of(" \t") == std::string::npos)
    return;
  Stats.Requests++;

  json::Value Doc;
  std::string Error;
  if (!json::parse(Line, Doc, Error)) {
    rejectRequest(C, "", OutcomeStatus::InvalidRequest, "invalid-request",
                  Error);
    return;
  }
  std::string Verb;
  if (parseControlLine(Doc, Verb, Error)) {
    if (!Error.empty())
      rejectRequest(C, "", OutcomeStatus::InvalidRequest, "invalid-request",
                    Error);
    else
      handleControl(C, Verb);
    return;
  }
  // Fleet path: envelope v2 only. --serve keeps accepting v1 for one
  // release; here a versionless line is a typed rejection the client can
  // key its migration on.
  int Ver = wireVersionOf(Doc, Error);
  if (Ver == 0) {
    rejectRequest(C, "", OutcomeStatus::InvalidRequest, "invalid-request",
                  Error);
    return;
  }
  // Pull the id out for the rejection lines below even when the rest of
  // the request is unusable; a best-effort echo beats an empty id.
  std::string ReqId;
  if (const json::Value *IdV = Doc.get("id"); IdV && IdV->isString())
    ReqId = IdV->asString();
  if (Ver != kWireVersion) {
    rejectRequest(C, ReqId, OutcomeStatus::UnsupportedVersion,
                  "unsupported-version",
                  "wire envelope v" + std::to_string(Ver) +
                      " is not accepted on the fleet path; send \"v\":" +
                      std::to_string(kWireVersion));
    return;
  }
  AnalysisRequest R;
  RequestSourceRef Ref;
  if (!parseAnalysisRequest(Doc, R, Ref, Error)) {
    rejectRequest(C, R.Id.empty() ? ReqId : R.Id,
                  OutcomeStatus::InvalidRequest, "invalid-request", Error);
    return;
  }
  if (Stats.Inflight >= Opts.MaxInflight) {
    rejectRequest(C, R.Id, OutcomeStatus::Overloaded, "overloaded",
                  "in-flight queue full (" +
                      std::to_string(Opts.MaxInflight) +
                      " requests); retry later");
    return;
  }
  admitRequest(C, Line, Ref, R.Id);
}

void FleetServer::handleControl(Conn &C, const std::string &Verb) {
  if (Verb == "health") {
    sendLine(C, renderFleetHealth());
    return;
  }
  // stats: fan a StatsQuery out to every live worker and aggregate the
  // replies; the answer line is deferred until the last reply (or death)
  // lands. Control traffic rides the same FIFOs as requests, so a stats
  // verb behind a long analysis answers after it -- in-band means
  // in-order.
  StatsCollect SC;
  SC.Token = NextCollectToken++;
  SC.ConnId = C.Id;
  for (size_t I = 0; I < Pool.size(); ++I) {
    if (!Pool.slot(I).Alive)
      continue;
    PendingReply P;
    P.K = PendingReply::Stats;
    P.ConnId = C.Id;
    P.CollectToken = SC.Token;
    P.Sent = std::chrono::steady_clock::now();
    WorkerIo[I].Fifo.push_back(std::move(P));
    appendFrame(WorkerIo[I].OutBuf, FrameType::StatsQuery, {});
    SC.Remaining++;
    flushWorkerOut(I);
  }
  if (SC.Remaining == 0) {
    finishCollect(SC);
    return;
  }
  Collects.push_back(std::move(SC));
}

void FleetServer::finishCollect(StatsCollect &SC) {
  if (Conn *C = findConn(SC.ConnId))
    sendLine(*C, renderFleetStats(SC));
}

std::string FleetServer::renderFleetStats(const StatsCollect &SC) const {
  size_t Live = 0;
  for (size_t I = 0; I < Pool.size(); ++I)
    Live += Pool.slot(I).Alive ? 1 : 0;
  std::string J = "{\"type\":\"fleet-stats\",\"v\":1";
  J += ",\"uptime_us\":" + std::to_string(uptimeUs());
  J += ",\"workers\":" + std::to_string(Pool.size());
  J += ",\"workers_live\":" + std::to_string(Live);
  J += ",\"connections\":" + std::to_string(Stats.Connections);
  J += ",\"requests\":" + std::to_string(Stats.Requests);
  J += ",\"admitted\":" + std::to_string(Stats.Admitted);
  J += ",\"rejected\":" + std::to_string(Stats.Rejected);
  J += ",\"rejected_overload\":" + std::to_string(Stats.RejectedOverload);
  J += ",\"rejected_version\":" + std::to_string(Stats.RejectedVersion);
  J += ",\"rejected_invalid\":" + std::to_string(Stats.RejectedInvalid);
  J += ",\"completed\":" + std::to_string(Stats.Completed);
  J += ",\"worker_lost\":" + std::to_string(Stats.WorkerLost);
  J += ",\"inflight\":" + std::to_string(Stats.Inflight);
  J += ",\"peak_inflight\":" + std::to_string(Stats.PeakInflight);
  J += ",\"worker_respawns\":" + std::to_string(Stats.WorkerRespawns);
  J += ",\"per_worker\":[";
  for (size_t I = 0; I < SC.Replies.size(); ++I) {
    if (I)
      J += ",";
    size_t Slot = SC.Replies[I].first;
    J += "{\"worker\":" + std::to_string(Slot);
    J += ",\"pid\":" + std::to_string(Pool.slot(Slot).Pid);
    J += ",\"spawns\":" + std::to_string(Pool.slot(Slot).Spawns);
    J += ",\"stats\":" + SC.Replies[I].second;
    J += "}";
  }
  J += "]}";
  return J;
}

std::string FleetServer::renderFleetHealth() const {
  size_t Live = 0;
  for (size_t I = 0; I < Pool.size(); ++I)
    Live += Pool.slot(I).Alive ? 1 : 0;
  std::string J = "{\"type\":\"fleet-health\",\"v\":1";
  J += ",\"status\":";
  J += Live ? "\"ok\"" : "\"degraded\"";
  J += ",\"uptime_us\":" + std::to_string(uptimeUs());
  J += ",\"workers\":" + std::to_string(Pool.size());
  J += ",\"workers_live\":" + std::to_string(Live);
  J += ",\"connections\":" + std::to_string(Stats.Connections);
  J += ",\"inflight\":" + std::to_string(Stats.Inflight);
  J += "}";
  return J;
}

void FleetServer::flushWorkerOut(size_t Slot) {
  WorkerState &W = WorkerIo[Slot];
  int Fd = Pool.slot(Slot).ReqFd;
  if (Fd < 0)
    return;
  while (!W.OutBuf.empty()) {
    ssize_t N = ::write(Fd, W.OutBuf.data(), W.OutBuf.size());
    if (N > 0) {
      W.OutBuf.erase(0, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // pipe full; POLLOUT drains it
    if (N < 0 && errno == EINTR)
      continue;
    return; // EPIPE: the response pipe's EOF path declares the death
  }
}

void FleetServer::handleWorkerFrame(size_t Slot, Frame &F) {
  WorkerState &W = WorkerIo[Slot];
  if (W.Fifo.empty())
    return; // spurious frame; nothing was asked
  PendingReply P = std::move(W.Fifo.front());
  W.Fifo.pop_front();

  if (F.Type == FrameType::Outcome && P.K == PendingReply::Request) {
    Stats.Completed++;
    Stats.Inflight--;
    uint64_t WallUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - P.Sent)
            .count());
    if (Log)
      Log->event("fleet-complete")
          .num("conn", P.ConnId)
          .str("id", P.ReqId)
          .num("worker", Slot)
          .str("status", outcomeLineStatus(F.Payload))
          .num("wall_us", WallUs);
    if (Conn *C = findConn(P.ConnId)) {
      if (C->Pending)
        C->Pending--;
      sendLine(*C, F.Payload);
    }
    return;
  }
  if (F.Type == FrameType::StatsReply && P.K == PendingReply::Stats) {
    for (size_t I = 0; I < Collects.size(); ++I) {
      StatsCollect &SC = Collects[I];
      if (SC.Token != P.CollectToken)
        continue;
      SC.Replies.emplace_back(Slot, std::move(F.Payload));
      if (--SC.Remaining == 0) {
        finishCollect(SC);
        Collects.erase(Collects.begin() + I);
      }
      return;
    }
    return;
  }
  // Reply kind disagrees with what was asked: the stream is corrupt.
  markWorkerDead(Slot);
}

void FleetServer::handleWorkerReadable(size_t Slot) {
  int Fd = Pool.slot(Slot).RespFd;
  if (Fd < 0)
    return;
  char Buf[8192];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R > 0) {
      WorkerState &W = WorkerIo[Slot];
      W.Reader.feed(Buf, static_cast<size_t>(R));
      Frame F;
      while (W.Reader.pop(F)) {
        handleWorkerFrame(Slot, F);
        if (!Pool.slot(Slot).Alive)
          return; // the frame handler declared the worker dead
      }
      if (W.Reader.bad()) {
        markWorkerDead(Slot);
        return;
      }
      continue;
    }
    if (R == 0) {
      markWorkerDead(Slot);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    if (errno == EINTR)
      continue;
    markWorkerDead(Slot);
    return;
  }
}

void FleetServer::markWorkerDead(size_t Slot) {
  if (!Pool.slot(Slot).Alive)
    return;
  pid_t OldPid = Pool.slot(Slot).Pid;
  Pool.collect(Slot);
  if (Log)
    Log->event("worker-exit")
        .num("worker", Slot)
        .num("pid", static_cast<uint64_t>(OldPid));

  // Every request parked in this worker's FIFO is answered now with a
  // typed worker-lost degradation -- the client sees an outcome, never a
  // hang. Stats queries in flight just shrink their aggregation.
  WorkerState Dead = std::move(WorkerIo[Slot]);
  WorkerIo[Slot] = WorkerState();
  for (PendingReply &P : Dead.Fifo) {
    if (P.K == PendingReply::Request) {
      Stats.Completed++;
      Stats.WorkerLost++;
      Stats.Inflight--;
      if (Log)
        Log->event("fleet-complete")
            .num("conn", P.ConnId)
            .str("id", P.ReqId)
            .num("worker", Slot)
            .str("status", "worker-lost")
            .num("wall_us", 0);
      if (Conn *C = findConn(P.ConnId)) {
        if (C->Pending)
          C->Pending--;
        sendLine(*C,
                 renderDegradedOutcome(
                     P.ReqId, OutcomeStatus::WorkerLost,
                     "worker " + std::to_string(Slot) +
                         " died while serving this request; it has been "
                         "respawned with a cold cache -- retry"));
      }
    } else {
      for (size_t I = 0; I < Collects.size(); ++I) {
        StatsCollect &SC = Collects[I];
        if (SC.Token != P.CollectToken)
          continue;
        if (--SC.Remaining == 0) {
          finishCollect(SC);
          Collects.erase(Collects.begin() + I);
        }
        break;
      }
    }
  }

  if (Stopping)
    return;
  std::string Error;
  if (Pool.respawn(Slot, Error)) {
    Stats.WorkerRespawns++;
    setNonblock(Pool.slot(Slot).ReqFd);
    setNonblock(Pool.slot(Slot).RespFd);
    if (Log)
      Log->event("worker-spawn")
          .num("worker", Slot)
          .num("pid", static_cast<uint64_t>(Pool.slot(Slot).Pid));
  }
  // A failed respawn leaves the slot down; requests routing to it get
  // typed worker-lost rejections (admitRequest checks Alive).
}

void FleetServer::runLoop() {
  std::vector<pollfd> Pfds;
  // (kind, id/slot) aligned with Pfds: 0 = wake, 1 = listen, 2 = conn
  // (payload = conn id), 3 = worker resp, 4 = worker req.
  struct Tag {
    int Kind;
    uint64_t Payload;
  };
  std::vector<Tag> Tags;

  while (!Stopping) {
    Pfds.clear();
    Tags.clear();
    Pfds.push_back({WakeRead, POLLIN, 0});
    Tags.push_back({0, 0});
    Pfds.push_back({ListenFd, POLLIN, 0});
    Tags.push_back({1, 0});
    for (Conn &C : Conns) {
      if (C.Gone)
        continue;
      short Ev = 0;
      // Backpressure: a saturated connection is not read until its
      // pending work or output backlog drains.
      if (C.Pending < Opts.MaxPerConnection && C.Out.size() < kMaxConnOutBytes)
        Ev |= POLLIN;
      if (!C.Out.empty())
        Ev |= POLLOUT;
      if (!Ev)
        continue;
      Pfds.push_back({C.Fd, Ev, 0});
      Tags.push_back({2, C.Id});
    }
    for (size_t I = 0; I < Pool.size(); ++I) {
      if (!Pool.slot(I).Alive)
        continue;
      Pfds.push_back({Pool.slot(I).RespFd, POLLIN, 0});
      Tags.push_back({3, I});
      if (!WorkerIo[I].OutBuf.empty()) {
        Pfds.push_back({Pool.slot(I).ReqFd, POLLOUT, 0});
        Tags.push_back({4, I});
      }
    }

    int N = ::poll(Pfds.data(), Pfds.size(), -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }

    for (size_t I = 0; I < Pfds.size(); ++I) {
      if (!Pfds[I].revents)
        continue;
      switch (Tags[I].Kind) {
      case 0: {
        char Drain[64];
        while (::read(WakeRead, Drain, sizeof(Drain)) > 0) {
        }
        Stopping = true;
        break;
      }
      case 1:
        handleListen();
        break;
      case 2: {
        Conn *C = findConn(Tags[I].Payload);
        if (!C)
          break;
        if (Pfds[I].revents & POLLOUT)
          handleConnWritable(*C);
        if (C->Gone)
          break;
        if (Pfds[I].revents & (POLLIN | POLLHUP | POLLERR))
          handleConnReadable(*C);
        break;
      }
      case 3:
        handleWorkerReadable(Tags[I].Payload);
        break;
      case 4:
        flushWorkerOut(Tags[I].Payload);
        break;
      }
      if (Stopping)
        break;
    }

    Conns.remove_if([](const Conn &C) { return C.Gone; });
  }

  // Graceful shutdown: close client connections, then EOF the workers.
  for (Conn &C : Conns)
    closeConn(C);
  Conns.clear();
  closeFd(ListenFd);
  Pool.shutdown();
}
