//===-- Interp.h - Concrete interpreter + dynamic leak oracle --*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable version of the paper's concrete operational semantics
/// (Fig. 3): a whole-IR interpreter whose run-time objects carry the
/// iteration of the tracked loop in which they were created, and which
/// logs the concrete heap store effects (Psi) and load effects (Omega).
/// detectDynamicLeaks applies Definition 1 to those logs, giving a
/// ground-truth oracle the property tests compare the static analysis
/// against.
///
/// Dynamic semantics notes (documented deviations, see DESIGN.md):
///   - Thread.start runs the thread body synchronously (deterministic).
///   - && and || evaluate both operands (MJ is strict).
///
//===----------------------------------------------------------------------===//

#ifndef LC_INTERP_INTERP_H
#define LC_INTERP_INTERP_H

#include "ir/Program.h"

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace lc {

/// A run-time value: null, int, boolean, or an object reference.
struct Value {
  enum class Kind : uint8_t { Null, Int, Bool, Ref };
  Kind K = Kind::Null;
  int64_t I = 0;   ///< Int/Bool payload
  uint32_t Obj = 0; ///< Ref payload (index into the heap)

  static Value null() { return {}; }
  static Value intV(int64_t V) { return {Kind::Int, V, 0}; }
  static Value boolV(bool V) { return {Kind::Bool, V ? 1 : 0, 0}; }
  static Value ref(uint32_t O) { return {Kind::Ref, 0, O}; }
  bool isNull() const { return K == Kind::Null; }
  bool truthy() const { return I != 0; }
};

/// One heap object. Objects are never collected during interpretation (the
/// oracle needs the full history).
struct RtObject {
  AllocSiteId Site = kInvalidId;
  TypeId Ty = kInvalidId;
  /// nu(l) of the tracked loop when this object was created.
  uint64_t CreatedIter = 0;
  /// True if created dynamically within an iteration of the tracked loop.
  bool CreatedInside = false;
  std::unordered_map<FieldId, Value> Fields;
  std::vector<Value> Elems; ///< arrays only
  Symbol Str;               ///< strings only
};

/// One concrete heap effect (store into Psi, load into Omega): object
/// \p Val moved through field \p Field of object \p Base during tracked
/// iteration \p Iter.
struct HeapEffect {
  uint32_t Val = 0;
  FieldId Field = kInvalidId;
  uint32_t Base = 0;
  uint64_t Iter = 0;
};

/// Interpreter limits and the loop whose effects are tracked.
struct InterpOptions {
  uint64_t MaxSteps = 20'000'000;
  /// Loop whose iterations tag objects and effects; kInvalidId tracks
  /// nothing (plain execution).
  LoopId TrackedLoop = kInvalidId;
};

/// Result of one interpretation.
struct InterpResult {
  enum class Status { Ok, Trap, StepLimit };
  Status St = Status::Ok;
  std::string TrapMessage;
  uint64_t Steps = 0;
  /// Iterations the tracked loop completed.
  uint64_t TrackedIters = 0;

  std::vector<RtObject> Heap; ///< object 0 is the synthetic globals holder
  std::vector<HeapEffect> StoreLog; ///< Psi
  std::vector<HeapEffect> LoadLog;  ///< Omega

  bool ok() const { return St == Status::Ok; }
};

/// Runs \p P (static initializers, then main) under \p Opts.
InterpResult interpret(const Program &P, InterpOptions Opts = {});

/// Ground truth from Definition 1 applied to an interpretation's logs.
struct DynamicLeakReport {
  /// Run-time objects classified as leaking.
  std::set<uint32_t> Objects;
  /// Their allocation sites (a site leaks if any instance leaks).
  std::set<AllocSiteId> Sites;
};

/// Applies Definition 1 (leaking objects of the tracked loop) to \p R.
DynamicLeakReport detectDynamicLeaks(const InterpResult &R);

} // namespace lc

#endif // LC_INTERP_INTERP_H
