//===-- Interp.cpp --------------------------------------------------------===//

#include "interp/Interp.h"

#include "callgraph/CallGraph.h"

#include <cassert>

using namespace lc;

namespace {

/// One activation record.
struct Frame {
  MethodId Method = kInvalidId;
  StmtIdx Pc = 0;
  std::vector<Value> Locals;
  /// Destination local in the *caller* for the return value.
  LocalId CallerDst = kInvalidId;
  /// True if this frame was entered from inside the tracked loop.
  bool InsideTracked = false;
};

class Machine {
public:
  Machine(const Program &P, InterpOptions Opts) : P(P), Opts(Opts) {}

  InterpResult run() {
    // Object 0: synthetic holder of static fields; created "outside".
    R.Heap.emplace_back();
    R.Heap[0].Site = kInvalidId;

    for (MethodId M : P.ClinitMethods)
      if (!runMethod(M))
        return finish();
    if (P.EntryMethod != kInvalidId)
      runMethod(P.EntryMethod);
    return finish();
  }

private:
  InterpResult finish() {
    R.TrackedIters = TrackedIter;
    return std::move(R);
  }

  bool trap(const std::string &Msg) {
    R.St = InterpResult::Status::Trap;
    Frame &F = Stack.back();
    SourceLoc Loc = P.Methods[F.Method].Body[F.Pc].Loc;
    R.TrapMessage =
        P.qualifiedMethodName(F.Method) + ":" + Loc.str() + ": " + Msg;
    return false;
  }

  /// Is the current execution point dynamically inside an iteration of the
  /// tracked loop?
  bool insideTracked() const {
    if (Opts.TrackedLoop == kInvalidId || Stack.empty())
      return false;
    const Frame &F = Stack.back();
    if (F.InsideTracked)
      return true;
    const LoopInfo &L = P.Loops[Opts.TrackedLoop];
    return F.Method == L.Method && F.Pc >= L.BodyBegin && F.Pc < L.BodyEnd;
  }

  uint32_t allocate(AllocSiteId Site, TypeId Ty) {
    RtObject O;
    O.Site = Site;
    O.Ty = Ty;
    O.CreatedIter = TrackedIter;
    O.CreatedInside = insideTracked();
    R.Heap.push_back(std::move(O));
    return static_cast<uint32_t>(R.Heap.size() - 1);
  }

  void logStore(Value Val, FieldId F, uint32_t Base) {
    if (Opts.TrackedLoop == kInvalidId || Val.K != Value::Kind::Ref)
      return;
    if (!insideTracked())
      return;
    R.StoreLog.push_back({Val.Obj, F, Base, TrackedIter});
  }
  void logLoad(Value Val, FieldId F, uint32_t Base) {
    if (Opts.TrackedLoop == kInvalidId || Val.K != Value::Kind::Ref)
      return;
    if (!insideTracked())
      return;
    R.LoadLog.push_back({Val.Obj, F, Base, TrackedIter});
  }

  /// Pushes a frame for \p M; binds receiver/arguments from \p Caller.
  /// \p CallerInside must be computed at the call statement itself (the
  /// caller's pc has already moved to the return point).
  void pushFrame(MethodId M, const Stmt &Call, Frame &Caller,
                 bool CallerInside) {
    const MethodInfo &MI = P.Methods[M];
    Frame F;
    F.Method = M;
    F.Locals.assign(MI.Locals.size(), Value::null());
    unsigned First = MI.IsStatic ? 0 : 1;
    if (!MI.IsStatic)
      F.Locals[0] = Caller.Locals[Call.SrcA];
    for (size_t A = 0; A < Call.Args.size(); ++A)
      F.Locals[First + A] = Caller.Locals[Call.Args[A]];
    F.CallerDst = Call.Dst;
    F.InsideTracked = CallerInside;
    Stack.push_back(std::move(F));
  }

  /// Runs \p M to completion (used for entry points).
  bool runMethod(MethodId M) {
    Frame F;
    F.Method = M;
    F.Locals.assign(P.Methods[M].Locals.size(), Value::null());
    Stack.push_back(std::move(F));
    return execute();
  }

  /// Main interpreter loop; returns false on trap/limit.
  bool execute() {
    size_t BaseDepth = Stack.size() - 1;
    while (Stack.size() > BaseDepth) {
      if (++R.Steps > Opts.MaxSteps) {
        R.St = InterpResult::Status::StepLimit;
        return false;
      }
      Frame &F = Stack.back();
      const MethodInfo &MI = P.Methods[F.Method];
      assert(F.Pc < MI.Body.size() && "fell off a method body");
      const Stmt &S = MI.Body[F.Pc];
      switch (S.Op) {
      case Opcode::Nop:
        break;
      case Opcode::IterBegin:
        if (S.Loop == Opts.TrackedLoop)
          ++TrackedIter;
        break;
      case Opcode::ConstInt:
        F.Locals[S.Dst] = Value::intV(S.IntVal);
        break;
      case Opcode::ConstBool:
        F.Locals[S.Dst] = Value::boolV(S.IntVal != 0);
        break;
      case Opcode::ConstNull:
        F.Locals[S.Dst] = Value::null();
        break;
      case Opcode::ConstStr: {
        uint32_t O = allocate(S.Site, S.Ty);
        R.Heap[O].Str = S.StrVal;
        F.Locals[S.Dst] = Value::ref(O);
        break;
      }
      case Opcode::Copy:
        F.Locals[S.Dst] = F.Locals[S.SrcA];
        break;
      case Opcode::Cast: {
        Value V = F.Locals[S.SrcA];
        if (V.K == Value::Kind::Ref) {
          const Type &Target = P.Types.get(S.Ty);
          const Type &Actual = P.Types.get(R.Heap[V.Obj].Ty);
          bool Ok = Target.K == Type::Kind::Ref &&
                    ((Actual.K == Type::Kind::Ref &&
                      P.isSubclassOf(Actual.Cls, Target.Cls)) ||
                     (Actual.K == Type::Kind::Array &&
                      Target.Cls == P.ObjectClass));
          if (!Ok)
            return trap("bad cast to " + P.typeName(S.Ty));
        }
        F.Locals[S.Dst] = V;
        break;
      }
      case Opcode::BinOp: {
        Value A = F.Locals[S.SrcA], B = F.Locals[S.SrcB];
        Value Out;
        switch (S.BK) {
        case BinKind::Add:
          Out = Value::intV(A.I + B.I);
          break;
        case BinKind::Sub:
          Out = Value::intV(A.I - B.I);
          break;
        case BinKind::Mul:
          Out = Value::intV(A.I * B.I);
          break;
        case BinKind::Div:
          if (B.I == 0)
            return trap("division by zero");
          Out = Value::intV(A.I / B.I);
          break;
        case BinKind::Rem:
          if (B.I == 0)
            return trap("division by zero");
          Out = Value::intV(A.I % B.I);
          break;
        case BinKind::CmpLt:
          Out = Value::boolV(A.I < B.I);
          break;
        case BinKind::CmpLe:
          Out = Value::boolV(A.I <= B.I);
          break;
        case BinKind::CmpGt:
          Out = Value::boolV(A.I > B.I);
          break;
        case BinKind::CmpGe:
          Out = Value::boolV(A.I >= B.I);
          break;
        case BinKind::CmpEq:
        case BinKind::CmpNe: {
          bool Eq;
          if (A.K == Value::Kind::Ref || B.K == Value::Kind::Ref ||
              A.K == Value::Kind::Null || B.K == Value::Kind::Null) {
            bool ANull = A.K != Value::Kind::Ref;
            bool BNull = B.K != Value::Kind::Ref;
            Eq = ANull && BNull ? true
                 : ANull != BNull ? false
                                  : A.Obj == B.Obj;
          } else {
            Eq = A.I == B.I;
          }
          Out = Value::boolV(S.BK == BinKind::CmpEq ? Eq : !Eq);
          break;
        }
        case BinKind::And:
          Out = Value::boolV(A.truthy() && B.truthy());
          break;
        case BinKind::Or:
          Out = Value::boolV(A.truthy() || B.truthy());
          break;
        }
        F.Locals[S.Dst] = Out;
        break;
      }
      case Opcode::UnOp:
        F.Locals[S.Dst] = S.UK == UnKind::Neg
                              ? Value::intV(-F.Locals[S.SrcA].I)
                              : Value::boolV(!F.Locals[S.SrcA].truthy());
        break;
      case Opcode::New:
        F.Locals[S.Dst] = Value::ref(allocate(S.Site, S.Ty));
        break;
      case Opcode::NewArray: {
        int64_t Len = F.Locals[S.SrcA].I;
        if (Len < 0)
          return trap("negative array size");
        uint32_t O = allocate(S.Site, S.Ty);
        R.Heap[O].Elems.assign(static_cast<size_t>(Len), Value::null());
        F.Locals[S.Dst] = Value::ref(O);
        break;
      }
      case Opcode::Load: {
        Value Base = F.Locals[S.SrcA];
        if (Base.K != Value::Kind::Ref)
          return trap("null dereference reading field " +
                      P.fieldName(S.Field));
        auto It = R.Heap[Base.Obj].Fields.find(S.Field);
        Value V = It == R.Heap[Base.Obj].Fields.end() ? Value::null()
                                                      : It->second;
        F.Locals[S.Dst] = V;
        logLoad(V, S.Field, Base.Obj);
        break;
      }
      case Opcode::Store: {
        Value Base = F.Locals[S.SrcA];
        if (Base.K != Value::Kind::Ref)
          return trap("null dereference writing field " +
                      P.fieldName(S.Field));
        Value V = F.Locals[S.SrcB];
        R.Heap[Base.Obj].Fields[S.Field] = V;
        logStore(V, S.Field, Base.Obj);
        break;
      }
      case Opcode::StaticLoad: {
        auto It = R.Heap[0].Fields.find(S.Field);
        Value V = It == R.Heap[0].Fields.end() ? Value::null() : It->second;
        F.Locals[S.Dst] = V;
        logLoad(V, S.Field, 0);
        break;
      }
      case Opcode::StaticStore: {
        Value V = F.Locals[S.SrcB];
        R.Heap[0].Fields[S.Field] = V;
        logStore(V, S.Field, 0);
        break;
      }
      case Opcode::ArrayLoad: {
        Value Base = F.Locals[S.SrcA];
        if (Base.K != Value::Kind::Ref)
          return trap("null dereference indexing array");
        RtObject &O = R.Heap[Base.Obj];
        int64_t Ix = F.Locals[S.SrcB].I;
        if (Ix < 0 || static_cast<size_t>(Ix) >= O.Elems.size())
          return trap("array index out of bounds");
        Value V = O.Elems[static_cast<size_t>(Ix)];
        F.Locals[S.Dst] = V;
        logLoad(V, P.ElemField, Base.Obj);
        break;
      }
      case Opcode::ArrayStore: {
        Value Base = F.Locals[S.SrcA];
        if (Base.K != Value::Kind::Ref)
          return trap("null dereference indexing array");
        RtObject &O = R.Heap[Base.Obj];
        int64_t Ix = F.Locals[S.SrcB].I;
        if (Ix < 0 || static_cast<size_t>(Ix) >= O.Elems.size())
          return trap("array index out of bounds");
        Value V = F.Locals[S.SrcC];
        O.Elems[static_cast<size_t>(Ix)] = V;
        logStore(V, P.ElemField, Base.Obj);
        break;
      }
      case Opcode::ArrayLen: {
        Value Base = F.Locals[S.SrcA];
        if (Base.K != Value::Kind::Ref)
          return trap("null dereference reading length");
        F.Locals[S.Dst] =
            Value::intV(static_cast<int64_t>(R.Heap[Base.Obj].Elems.size()));
        break;
      }
      case Opcode::Invoke: {
        MethodId Target = S.Callee;
        if (S.CK == CallKind::Virtual) {
          Value Base = F.Locals[S.SrcA];
          if (Base.K != Value::Kind::Ref)
            return trap("null dereference calling " + P.methodName(S.Callee));
          const Type &T = P.Types.get(R.Heap[Base.Obj].Ty);
          if (T.K == Type::Kind::Ref) {
            Target = dispatch(P, T.Cls, S.Callee);
            if (Target == kInvalidId)
              return trap("no dispatch target for " + P.methodName(S.Callee));
          }
        } else if (S.CK == CallKind::Special) {
          if (F.Locals[S.SrcA].K != Value::Kind::Ref)
            return trap("null receiver in special call");
        }
        {
          bool CallerInside = insideTracked(); // before the pc moves
          ++F.Pc; // return to the following statement
          pushFrame(Target, S, F, CallerInside);
        }
        continue; // do not bump the new frame's pc
      }
      case Opcode::Return: {
        Value Ret =
            S.SrcA != kInvalidId ? F.Locals[S.SrcA] : Value::null();
        LocalId Dst = F.CallerDst;
        Stack.pop_back();
        if (Stack.size() > BaseDepth && Dst != kInvalidId)
          Stack.back().Locals[Dst] = Ret;
        continue;
      }
      case Opcode::If:
        if (F.Locals[S.SrcA].truthy()) {
          F.Pc = S.Target;
          continue;
        }
        break;
      case Opcode::Goto:
        F.Pc = S.Target;
        continue;
      }
      ++F.Pc;
    }
    return true;
  }

  const Program &P;
  InterpOptions Opts;
  InterpResult R;
  std::vector<Frame> Stack;
  uint64_t TrackedIter = 0;
};

} // namespace

InterpResult lc::interpret(const Program &P, InterpOptions Opts) {
  return Machine(P, Opts).run();
}

DynamicLeakReport lc::detectDynamicLeaks(const InterpResult &R) {
  DynamicLeakReport Out;

  // Reverse store index: children(base) = values stored into it.
  std::unordered_map<uint32_t, std::vector<uint32_t>> StoredInto;
  for (const HeapEffect &E : R.StoreLog)
    StoredInto[E.Base].push_back(E.Val);

  // flowsBack(r): r was the value of some load in an iteration after its
  // creation (Definition 1, condition (2)).
  auto FlowsBack = [&](uint32_t Obj) {
    for (const HeapEffect &E : R.LoadLog)
      if (E.Val == Obj && E.Iter > R.Heap[Obj].CreatedIter)
        return true;
    return false;
  };

  for (const HeapEffect &Root : R.StoreLog) {
    const RtObject &Val = R.Heap[Root.Val];
    const RtObject &Base = R.Heap[Root.Base];
    // Escape root: inside object saved into an outside object.
    if (!Val.CreatedInside || Base.CreatedInside)
      continue;
    // Condition (1): the root is loaded back through the same reference
    // (base.field) in a later iteration.
    bool RootReloaded = false;
    for (const HeapEffect &L : R.LoadLog)
      if (L.Val == Root.Val && L.Base == Root.Base && L.Field == Root.Field &&
          L.Iter > Root.Iter) {
        RootReloaded = true;
        break;
      }
    // Every inside object hanging off the root (including the root).
    std::set<uint32_t> Structure;
    std::vector<uint32_t> Work = {Root.Val};
    while (!Work.empty()) {
      uint32_t O = Work.back();
      Work.pop_back();
      if (!Structure.insert(O).second)
        continue;
      auto It = StoredInto.find(O);
      if (It == StoredInto.end())
        continue;
      for (uint32_t Child : It->second)
        if (R.Heap[Child].CreatedInside)
          Work.push_back(Child);
    }
    for (uint32_t Obj : Structure) {
      if (Out.Objects.count(Obj))
        continue;
      if (!RootReloaded || !FlowsBack(Obj)) {
        Out.Objects.insert(Obj);
        Out.Sites.insert(R.Heap[Obj].Site);
      }
    }
  }
  return Out;
}
