//===-- AnalysisService.cpp -----------------------------------------------===//

#include "service/AnalysisService.h"

#include "frontend/Lower.h"
#include "support/Trace.h"

#include <algorithm>
#include <numeric>

using namespace lc;

namespace {

uint64_t fnv1a(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

} // namespace

AnalysisService::AnalysisService(ServiceOptions Opts) : Opts(Opts) {
  // MaxSessions == 0 would make every request thrash; clamp to one
  // resident session rather than exporting another invalid state.
  if (this->Opts.MaxSessions == 0)
    this->Opts.MaxSessions = 1;
}

AnalysisService::~AnalysisService() = default;

uint64_t AnalysisService::programHash(std::string_view Source) {
  return fnv1a(Source);
}

uint64_t AnalysisService::approxSessionBytes(const LeakChecker &Session) {
  // A linear model of the substrate's dominant structures: statements and
  // PAG nodes (locals, fields, allocation slots) drive the Andersen
  // points-to sets and the CFL indices. Deliberately coarse -- the budget
  // bounds growth, it does not meter an allocator.
  const Program &P = Session.program();
  uint64_t Stmts = P.totalStmts();
  uint64_t Nodes = Session.pag().numNodes();
  uint64_t Sites = P.AllocSites.size();
  return 64 * 1024                   // fixed per-session overhead
         + Stmts * 96                // IR + call graph + escape analysis
         + Nodes * (64 + Sites / 4)  // PAG + Andersen bit sets
         + Sites * 256;              // site tables, CFL alloc index
}

LeakChecker *AnalysisService::sessionFor(const AnalysisRequest &R,
                                         SubstrateOrigin &Origin,
                                         std::string &Error) {
  uint64_t OptionsFp = R.Options.substrateFingerprint();
  uint64_t Key = mix(programHash(R.Source), OptionsFp);
  auto It = ByKey.find(Key);
  if (It != ByKey.end()) {
    ServiceStats.add("service-session-hits");
    // Touch: move to the front of the LRU list.
    Lru.splice(Lru.begin(), Lru, It->second);
    Origin = SubstrateOrigin::ReusedWarm;
    return It->second->Checker.get();
  }

  // Exact miss: before paying for a cold build, try carrying a resident
  // session across the edit.
  if (LeakChecker *Patched = patchNearestAncestor(R, OptionsFp, Key)) {
    Origin = SubstrateOrigin::ReusedIncremental;
    return Patched;
  }

  trace::TraceSpan Span("service.build-session", "service");
  DiagnosticEngine Diags;
  auto Checker =
      LeakChecker::fromSource(R.Source, Diags, R.Options.leakOptions());
  if (!Checker) {
    Error = Diags.str();
    return nullptr;
  }
  ServiceStats.add("service-session-builds");
  Origin = SubstrateOrigin::Built;

  Session S;
  S.OptionsFp = OptionsFp;
  S.ApproxBytes = approxSessionBytes(*Checker);
  S.Checker = std::move(Checker);
  insertSession(std::move(S), Key);
  return Lru.begin()->Checker.get();
}

LeakChecker *AnalysisService::patchNearestAncestor(const AnalysisRequest &R,
                                                   uint64_t OptionsFp,
                                                   uint64_t NewKey) {
  if (Lru.empty())
    return nullptr;
  DeclIndex Idx = scanDeclarations(R.Source);
  if (!Idx.Valid)
    return nullptr;
  // Nearest ancestor: among patchable candidates built under the same
  // substrate options, the one with the fewest changed bodies (its
  // solver state overlaps the edited program the most).
  auto Best = Lru.end();
  uint32_t BestChanged = ~0u;
  for (auto It = Lru.begin(); It != Lru.end(); ++It) {
    if (It->OptionsFp != OptionsFp)
      continue;
    ProgramDiff Diff = diffDeclarations(It->Checker->program().Decls, Idx);
    if (!Diff.Patchable)
      continue;
    if (Diff.MethodsBodyChanged < BestChanged) {
      BestChanged = Diff.MethodsBodyChanged;
      Best = It;
    }
  }
  if (Best == Lru.end())
    return nullptr;

  trace::TraceSpan Span("service.patch-session", "service");
  DiagnosticEngine Diags;
  std::unique_ptr<LeakChecker> Patched =
      LeakChecker::patchFrom(*Best->Checker, R.Source, Diags);
  if (!Patched)
    return nullptr; // failed patches leave the ancestor warm; cold-build

  // The ancestor's solver state was consumed by the patch: its cache
  // entry is replaced by the patched session under the new source key.
  ServiceStats.add("service-session-patches");
  ResidentBytes -= Best->ApproxBytes;
  ByKey.erase(Best->Key);
  Lru.erase(Best);

  Session S;
  S.OptionsFp = OptionsFp;
  S.ApproxBytes = approxSessionBytes(*Patched);
  S.Checker = std::move(Patched);
  insertSession(std::move(S), NewKey);
  return Lru.begin()->Checker.get();
}

void AnalysisService::insertSession(Session S, uint64_t Key) {
  S.Key = Key;
  ResidentBytes += S.ApproxBytes;
  Lru.push_front(std::move(S));
  ByKey[Key] = Lru.begin();
  evictOver(Key);
  ServiceStats.setGauge("service-resident-bytes", ResidentBytes);
}

void AnalysisService::evictOver(size_t KeepKey) {
  // Evict least-recently-used sessions until both limits hold. The
  // session serving the current request is never evicted, even when it
  // alone exceeds the budget -- a request must run somewhere.
  while (Lru.size() > 1 && (Lru.size() > Opts.MaxSessions ||
                            ResidentBytes > Opts.MemoryBudgetBytes)) {
    auto Victim = std::prev(Lru.end());
    if (Victim->Key == KeepKey)
      break;
    ServiceStats.add("service-session-evictions");
    ResidentBytes -= Victim->ApproxBytes;
    ByKey.erase(Victim->Key);
    Lru.erase(Victim);
  }
}

AnalysisOutcome AnalysisService::run(const AnalysisRequest &R) {
  trace::TraceSpan Span("service.request", "service");
  ServiceStats.add("service-requests");

  SubstrateOrigin Origin = SubstrateOrigin::Built;
  std::string Error;
  uint64_t EvictionsBefore = ServiceStats.get("service-session-evictions");
  LeakChecker *S = sessionFor(R, Origin, Error);
  uint64_t EvictionsNow =
      ServiceStats.get("service-session-evictions") - EvictionsBefore;
  if (!S) {
    ServiceStats.add("service-compile-errors");
    AnalysisOutcome O;
    O.Id = R.Id;
    O.Status = OutcomeStatus::CompileError;
    O.Diagnostics = Error;
    O.SubstrateBuilt = false;
    return O;
  }

  AnalysisOutcome O = S->run(R);
  O.Origin = Origin;
  O.SubstrateBuilt = Origin != SubstrateOrigin::ReusedWarm;
  if (Origin == SubstrateOrigin::ReusedWarm) {
    // Warm hit: the substrate was built (and its stats reported) by an
    // earlier request. Re-reporting the andersen-* counters here would
    // double-count construction work that never happened. (An
    // incremental patch keeps its stats: that work did run now.)
    O.SubstrateStats = Stats();
  }
  // Per-request cache behavior, merged into the run report alongside the
  // analysis counters so --stats-json shows the warm path. Environment
  // class: depends on what earlier requests left resident.
  O.SubstrateStats.addCounter("session-cache-hit",
                              Origin == SubstrateOrigin::ReusedWarm ? 1 : 0,
                              MetricDet::Environment);
  O.SubstrateStats.addCounter("session-cache-miss",
                              Origin == SubstrateOrigin::ReusedWarm ? 0 : 1,
                              MetricDet::Environment);
  O.SubstrateStats.addCounter("session-evictions", EvictionsNow,
                              MetricDet::Environment);
  switch (O.Status) {
  case OutcomeStatus::DeadlineExpired:
    ServiceStats.add("service-deadline-expired");
    break;
  case OutcomeStatus::Cancelled:
    ServiceStats.add("service-cancelled");
    break;
  case OutcomeStatus::LoopNotFound:
    ServiceStats.add("service-loop-not-found");
    break;
  case OutcomeStatus::InvalidRequest:
    ServiceStats.add("service-invalid-requests");
    break;
  default:
    break;
  }
  return O;
}

std::vector<AnalysisOutcome>
AnalysisService::runBatch(const std::vector<AnalysisRequest> &Rs) {
  // Schedule by priority (descending; stable for ties), answer in
  // submission order.
  std::vector<size_t> Order(Rs.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Rs[A].Priority > Rs[B].Priority;
  });
  std::vector<AnalysisOutcome> Out(Rs.size());
  for (size_t I : Order)
    Out[I] = run(Rs[I]);
  return Out;
}
