//===-- AnalysisService.cpp -----------------------------------------------===//

#include "service/AnalysisService.h"

#include "frontend/Lower.h"
#include "service/EventLog.h"
#include "support/MemStats.h"
#include "support/Trace.h"

#include <algorithm>
#include <numeric>

using namespace lc;

namespace {

uint64_t fnv1a(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

uint64_t usBetween(std::chrono::steady_clock::time_point From,
                   std::chrono::steady_clock::time_point To) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(To - From)
          .count());
}

uint64_t toUs(double Seconds) {
  return Seconds <= 0 ? 0 : static_cast<uint64_t>(Seconds * 1e6);
}

} // namespace

AnalysisService::AnalysisService(ServiceOptions Opts)
    : Opts(Opts), Epoch(std::chrono::steady_clock::now()) {
  // MaxSessions == 0 would make every request thrash; clamp to one
  // resident session rather than exporting another invalid state.
  if (this->Opts.MaxSessions == 0)
    this->Opts.MaxSessions = 1;
}

AnalysisService::~AnalysisService() = default;

uint64_t AnalysisService::programHash(std::string_view Source) {
  return fnv1a(Source);
}

uint64_t AnalysisService::approxSessionBytes(const LeakChecker &Session) {
  // A linear model of the substrate's dominant structures: statements and
  // PAG nodes (locals, fields, allocation slots) drive the Andersen
  // points-to sets and the CFL indices. Deliberately coarse -- the budget
  // bounds growth, it does not meter an allocator.
  const Program &P = Session.program();
  uint64_t Stmts = P.totalStmts();
  uint64_t Nodes = Session.pag().numNodes();
  uint64_t Sites = P.AllocSites.size();
  return 64 * 1024                   // fixed per-session overhead
         + Stmts * 96                // IR + call graph + escape analysis
         + Nodes * (64 + Sites / 4)  // PAG + Andersen bit sets
         + Sites * 256;              // site tables, CFL alloc index
}

LeakChecker *AnalysisService::sessionFor(const AnalysisRequest &R,
                                         SubstrateOrigin &Origin,
                                         std::string &Error) {
  uint64_t OptionsFp = R.Options.substrateFingerprint();
  uint64_t Key = mix(programHash(R.Source), OptionsFp);
  auto It = ByKey.find(Key);
  if (It != ByKey.end()) {
    ServiceStats.add("service-session-hits");
    if (Log)
      Log->event("session-hit").num("req", RequestSeq).num("key", Key);
    // Touch: move to the front of the LRU list.
    Lru.splice(Lru.begin(), Lru, It->second);
    Origin = SubstrateOrigin::ReusedWarm;
    return It->second->Checker.get();
  }

  // Exact miss: before paying for a cold build, try carrying a resident
  // session across the edit.
  if (LeakChecker *Patched = patchNearestAncestor(R, OptionsFp, Key)) {
    Origin = SubstrateOrigin::ReusedIncremental;
    return Patched;
  }

  trace::TraceSpan Span("service.build-session", "service");
  DiagnosticEngine Diags;
  auto Checker =
      LeakChecker::fromSource(R.Source, Diags, R.Options.leakOptions());
  if (!Checker) {
    Error = Diags.str();
    return nullptr;
  }
  ServiceStats.add("service-session-builds");
  Origin = SubstrateOrigin::Built;

  Session S;
  S.OptionsFp = OptionsFp;
  S.ApproxBytes = approxSessionBytes(*Checker);
  S.Checker = std::move(Checker);
  insertSession(std::move(S), Key);
  return Lru.begin()->Checker.get();
}

LeakChecker *AnalysisService::patchNearestAncestor(const AnalysisRequest &R,
                                                   uint64_t OptionsFp,
                                                   uint64_t NewKey) {
  if (Lru.empty())
    return nullptr;
  DeclIndex Idx = scanDeclarations(R.Source);
  if (!Idx.Valid)
    return nullptr;
  // Nearest ancestor: among patchable candidates built under the same
  // substrate options, the one with the fewest changed bodies (its
  // solver state overlaps the edited program the most).
  auto Best = Lru.end();
  uint32_t BestChanged = ~0u;
  for (auto It = Lru.begin(); It != Lru.end(); ++It) {
    if (It->OptionsFp != OptionsFp)
      continue;
    ProgramDiff Diff = diffDeclarations(It->Checker->program().Decls, Idx);
    if (!Diff.Patchable)
      continue;
    if (Diff.MethodsBodyChanged < BestChanged) {
      BestChanged = Diff.MethodsBodyChanged;
      Best = It;
    }
  }
  if (Best == Lru.end())
    return nullptr;

  trace::TraceSpan Span("service.patch-session", "service");
  DiagnosticEngine Diags;
  std::unique_ptr<LeakChecker> Patched =
      LeakChecker::patchFrom(*Best->Checker, R.Source, Diags);
  if (!Patched)
    return nullptr; // failed patches leave the ancestor warm; cold-build

  // The ancestor's solver state was consumed by the patch: its cache
  // entry is replaced by the patched session under the new source key.
  ServiceStats.add("service-session-patches");
  if (Log)
    Log->event("session-patch")
        .num("req", RequestSeq)
        .num("ancestor_key", Best->Key)
        .num("key", NewKey)
        .num("changed_bodies", BestChanged);
  ResidentBytes -= Best->ApproxBytes;
  ByKey.erase(Best->Key);
  Lru.erase(Best);

  Session S;
  S.OptionsFp = OptionsFp;
  S.ApproxBytes = approxSessionBytes(*Patched);
  S.Checker = std::move(Patched);
  insertSession(std::move(S), NewKey);
  return Lru.begin()->Checker.get();
}

void AnalysisService::insertSession(Session S, uint64_t Key) {
  S.Key = Key;
  ResidentBytes += S.ApproxBytes;
  ++SessionInserts;
  if (Log)
    Log->event("session-insert")
        .num("req", RequestSeq)
        .num("key", Key)
        .num("bytes", S.ApproxBytes);
  Lru.push_front(std::move(S));
  ByKey[Key] = Lru.begin();
  evictOver(Key);
  ServiceStats.setGauge("service-resident-bytes", ResidentBytes);
}

void AnalysisService::evictOver(size_t KeepKey) {
  // Evict least-recently-used sessions until both limits hold. The
  // session serving the current request is never evicted, even when it
  // alone exceeds the budget -- a request must run somewhere.
  while (Lru.size() > 1 && (Lru.size() > Opts.MaxSessions ||
                            ResidentBytes > Opts.MemoryBudgetBytes)) {
    auto Victim = std::prev(Lru.end());
    if (Victim->Key == KeepKey)
      break;
    ServiceStats.add("service-session-evictions");
    if (Log)
      Log->event("session-evict")
          .num("req", RequestSeq)
          .num("key", Victim->Key)
          .num("bytes", Victim->ApproxBytes);
    ResidentBytes -= Victim->ApproxBytes;
    ByKey.erase(Victim->Key);
    Lru.erase(Victim);
  }
}

AnalysisOutcome AnalysisService::run(const AnalysisRequest &R) {
  auto T0 = std::chrono::steady_clock::now();
  uint64_t Seq = ++RequestSeq;
  // Queue wait: time between batch admission and this request's turn.
  // Direct run() calls never queued.
  uint64_t QueueUs = InBatch ? usBetween(BatchSubmit, T0) : 0;
  if (Log)
    Log->event("request-received")
        .str("id", R.Id)
        .num("req", Seq)
        .num("queue_us", QueueUs);

  trace::TraceSpan Span("service.request", "service");
  if (Opts.Attribution)
    trace::Tracer::setCurrentRequest(Seq);
  ServiceStats.add("service-requests");

  const bool CountAllocs = Opts.Attribution && mem::heapAllocsAvailable();
  const uint64_t AllocsBefore = CountAllocs ? mem::heapAllocs() : 0;

  SubstrateOrigin Origin = SubstrateOrigin::Built;
  std::string Error;
  uint64_t EvictionsBefore = ServiceStats.get("service-session-evictions");
  LeakChecker *S = sessionFor(R, Origin, Error);
  uint64_t EvictionsNow =
      ServiceStats.get("service-session-evictions") - EvictionsBefore;

  AnalysisOutcome O;
  if (!S) {
    ServiceStats.add("service-compile-errors");
    O.Id = R.Id;
    O.Status = OutcomeStatus::CompileError;
    O.Diagnostics = Error;
    O.SubstrateBuilt = false;
  } else {
    if (Log)
      Log->event("request-admitted")
          .str("id", R.Id)
          .num("req", Seq)
          .str("origin", substrateOriginName(Origin));
    O = S->run(R);
    O.Origin = Origin;
    O.SubstrateBuilt = Origin != SubstrateOrigin::ReusedWarm;
    if (Origin == SubstrateOrigin::ReusedWarm) {
      // Warm hit: the substrate was built (and its stats reported) by an
      // earlier request. Re-reporting the andersen-* counters here would
      // double-count construction work that never happened. (An
      // incremental patch keeps its stats: that work did run now.)
      O.SubstrateStats = Stats();
    }
    // Per-request cache behavior, merged into the run report alongside the
    // analysis counters so --stats-json shows the warm path. Environment
    // class: depends on what earlier requests left resident.
    O.SubstrateStats.addCounter("session-cache-hit",
                                Origin == SubstrateOrigin::ReusedWarm ? 1 : 0,
                                MetricDet::Environment);
    O.SubstrateStats.addCounter("session-cache-miss",
                                Origin == SubstrateOrigin::ReusedWarm ? 0 : 1,
                                MetricDet::Environment);
    O.SubstrateStats.addCounter("session-evictions", EvictionsNow,
                                MetricDet::Environment);
    switch (O.Status) {
    case OutcomeStatus::DeadlineExpired:
      ServiceStats.add("service-deadline-expired");
      if (Log)
        Log->event("deadline-expired")
            .str("id", R.Id)
            .num("req", Seq)
            .num("loops_completed", O.Results.size())
            .num("loops_not_run", O.LoopsNotRun.size());
      break;
    case OutcomeStatus::Cancelled:
      ServiceStats.add("service-cancelled");
      if (Log)
        Log->event("cancelled")
            .str("id", R.Id)
            .num("req", Seq)
            .num("loops_completed", O.Results.size())
            .num("loops_not_run", O.LoopsNotRun.size());
      break;
    case OutcomeStatus::LoopNotFound:
      ServiceStats.add("service-loop-not-found");
      break;
    case OutcomeStatus::InvalidRequest:
      ServiceStats.add("service-invalid-requests");
      break;
    default:
      break;
    }
  }

  // --- Epilogue: rolling state, attribution, terminal event ---------------
  auto T1 = std::chrono::steady_clock::now();
  const uint64_t WallUs = usBetween(T0, T1);
  StatusCounts[static_cast<size_t>(O.Status)]++;
  // Latency quantiles cover requests that reached a session; rejections
  // (compile-error, invalid-request) are error rates, not latencies.
  if (S && O.Status != OutcomeStatus::InvalidRequest) {
    OriginLatency[static_cast<size_t>(Origin)].record(
        std::chrono::duration<double>(T1 - T0).count());
    OriginCounts[static_cast<size_t>(Origin)]++;
  }

  if (Opts.Attribution) {
    RequestObservability &Obs = O.Observability;
    Obs.Valid = true;
    Obs.Seq = Seq;
    Obs.WallUs = WallUs;
    Obs.QueueUs = QueueUs;
    // Substrate phases bill to the request that paid for them: warm hits
    // had SubstrateStats cleared above, so they honestly report zero.
    Obs.AndersenUs = toUs(O.SubstrateStats.time("andersen-solve"));
    Obs.SummarizeUs = toUs(O.SubstrateStats.time("summarize"));
    for (const LeakAnalysisResult &Res : O.Results) {
      Obs.LeakAnalysisUs += toUs(Res.Statistics.time("leak-analysis"));
      Obs.MemoHits += Res.Statistics.get("cfl-cache-hits");
      Obs.MemoMisses += Res.Statistics.get("cfl-cache-misses");
    }
    Obs.EvictionsCaused = EvictionsNow;
    if (CountAllocs) {
      Obs.HeapAllocsValid = true;
      Obs.HeapAllocs = mem::heapAllocs() - AllocsBefore;
    }
    trace::Tracer::setCurrentRequest(0);
  }

  if (Log)
    Log->event(O.Status == OutcomeStatus::Ok ? "request-completed"
                                             : "request-degraded")
        .str("id", R.Id)
        .num("req", Seq)
        .str("status", outcomeStatusName(O.Status))
        .num("wall_us", WallUs);

  if (Log && SnapshotEvery && Seq % SnapshotEvery == 0)
    Log->event("snapshot").raw("stats", renderSnapshotJson(snapshot()));
  return O;
}

std::vector<AnalysisOutcome>
AnalysisService::runBatch(const std::vector<AnalysisRequest> &Rs) {
  // Schedule by priority (descending; stable for ties), answer in
  // submission order.
  std::vector<size_t> Order(Rs.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Rs[A].Priority > Rs[B].Priority;
  });
  std::vector<AnalysisOutcome> Out(Rs.size());
  InBatch = true;
  BatchSubmit = std::chrono::steady_clock::now();
  QueueDepth = Rs.size();
  for (size_t I : Order) {
    --QueueDepth; // this request leaves the queue as it starts executing
    Out[I] = run(Rs[I]);
  }
  InBatch = false;
  QueueDepth = 0;
  return Out;
}

ServiceSnapshot AnalysisService::snapshot() const {
  ServiceSnapshot S;
  S.UptimeUs = usBetween(Epoch, std::chrono::steady_clock::now());
  S.Requests = RequestSeq;
  S.QueueDepth = QueueDepth;
  for (size_t I = 0; I < kOutcomeStatusCount; ++I)
    S.StatusCounts[I] = StatusCounts[I];
  for (size_t I = 0; I < 3; ++I) {
    ServiceSnapshot::OriginLatency &L = S.ByOrigin[I];
    L.Count = OriginCounts[I];
    L.P50Us = OriginLatency[I].quantileUpperUs(0.50);
    L.P95Us = OriginLatency[I].quantileUpperUs(0.95);
    L.P99Us = OriginLatency[I].quantileUpperUs(0.99);
  }
  S.SessionsResident = Lru.size();
  S.SessionBytes = ResidentBytes;
  S.SessionInserts = SessionInserts;
  S.SessionHits = ServiceStats.get("service-session-hits");
  S.SessionPatches = ServiceStats.get("service-session-patches");
  S.SessionEvictions = ServiceStats.get("service-session-evictions");
  S.PeakRssKb = mem::peakRssKb();
  S.CurrentRssKb = mem::currentRssKb();
  S.HeapAllocsAvailable = mem::heapAllocsAvailable();
  if (S.HeapAllocsAvailable)
    S.HeapAllocs = mem::heapAllocs();
  S.EventsEmitted = Log ? Log->eventsEmitted() : 0;
  return S;
}
