//===-- AnalysisService.cpp -----------------------------------------------===//

#include "service/AnalysisService.h"

#include "support/Trace.h"

#include <algorithm>
#include <numeric>

using namespace lc;

namespace {

uint64_t fnv1a(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

} // namespace

AnalysisService::AnalysisService(ServiceOptions Opts) : Opts(Opts) {
  // MaxSessions == 0 would make every request thrash; clamp to one
  // resident session rather than exporting another invalid state.
  if (this->Opts.MaxSessions == 0)
    this->Opts.MaxSessions = 1;
}

AnalysisService::~AnalysisService() = default;

uint64_t AnalysisService::programHash(std::string_view Source) {
  return fnv1a(Source);
}

uint64_t AnalysisService::approxSessionBytes(const LeakChecker &Session) {
  // A linear model of the substrate's dominant structures: statements and
  // PAG nodes (locals, fields, allocation slots) drive the Andersen
  // points-to sets and the CFL indices. Deliberately coarse -- the budget
  // bounds growth, it does not meter an allocator.
  const Program &P = Session.program();
  uint64_t Stmts = P.totalStmts();
  uint64_t Nodes = Session.pag().numNodes();
  uint64_t Sites = P.AllocSites.size();
  return 64 * 1024                   // fixed per-session overhead
         + Stmts * 96                // IR + call graph + escape analysis
         + Nodes * (64 + Sites / 4)  // PAG + Andersen bit sets
         + Sites * 256;              // site tables, CFL alloc index
}

LeakChecker *AnalysisService::sessionFor(const AnalysisRequest &R,
                                         bool &Built, std::string &Error) {
  uint64_t Key =
      mix(programHash(R.Source), R.Options.substrateFingerprint());
  auto It = ByKey.find(Key);
  if (It != ByKey.end()) {
    ServiceStats.add("service-session-hits");
    // Touch: move to the front of the LRU list.
    Lru.splice(Lru.begin(), Lru, It->second);
    Built = false;
    return It->second->Checker.get();
  }

  trace::TraceSpan Span("service.build-session", "service");
  DiagnosticEngine Diags;
  auto Checker =
      LeakChecker::fromSource(R.Source, Diags, R.Options.leakOptions());
  if (!Checker) {
    Error = Diags.str();
    return nullptr;
  }
  ServiceStats.add("service-session-builds");
  Built = true;

  Session S;
  S.Key = Key;
  S.ApproxBytes = approxSessionBytes(*Checker);
  S.Checker = std::move(Checker);
  ResidentBytes += S.ApproxBytes;
  Lru.push_front(std::move(S));
  ByKey[Key] = Lru.begin();
  evictOver(Key);
  ServiceStats.setGauge("service-resident-bytes", ResidentBytes);
  return Lru.begin()->Checker.get();
}

void AnalysisService::evictOver(size_t KeepKey) {
  // Evict least-recently-used sessions until both limits hold. The
  // session serving the current request is never evicted, even when it
  // alone exceeds the budget -- a request must run somewhere.
  while (Lru.size() > 1 && (Lru.size() > Opts.MaxSessions ||
                            ResidentBytes > Opts.MemoryBudgetBytes)) {
    auto Victim = std::prev(Lru.end());
    if (Victim->Key == KeepKey)
      break;
    ServiceStats.add("service-session-evictions");
    ResidentBytes -= Victim->ApproxBytes;
    ByKey.erase(Victim->Key);
    Lru.erase(Victim);
  }
}

AnalysisOutcome AnalysisService::run(const AnalysisRequest &R) {
  trace::TraceSpan Span("service.request", "service");
  ServiceStats.add("service-requests");

  bool Built = false;
  std::string Error;
  LeakChecker *S = sessionFor(R, Built, Error);
  if (!S) {
    ServiceStats.add("service-compile-errors");
    AnalysisOutcome O;
    O.Id = R.Id;
    O.Status = OutcomeStatus::CompileError;
    O.Diagnostics = Error;
    O.SubstrateBuilt = false;
    return O;
  }

  AnalysisOutcome O = S->run(R);
  O.SubstrateBuilt = Built;
  if (!Built) {
    // Warm hit: the substrate was built (and its stats reported) by an
    // earlier request. Re-reporting the andersen-* counters here would
    // double-count construction work that never happened.
    O.SubstrateStats = Stats();
  }
  switch (O.Status) {
  case OutcomeStatus::DeadlineExpired:
    ServiceStats.add("service-deadline-expired");
    break;
  case OutcomeStatus::Cancelled:
    ServiceStats.add("service-cancelled");
    break;
  case OutcomeStatus::LoopNotFound:
    ServiceStats.add("service-loop-not-found");
    break;
  case OutcomeStatus::InvalidRequest:
    ServiceStats.add("service-invalid-requests");
    break;
  default:
    break;
  }
  return O;
}

std::vector<AnalysisOutcome>
AnalysisService::runBatch(const std::vector<AnalysisRequest> &Rs) {
  // Schedule by priority (descending; stable for ties), answer in
  // submission order.
  std::vector<size_t> Order(Rs.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Rs[A].Priority > Rs[B].Priority;
  });
  std::vector<AnalysisOutcome> Out(Rs.size());
  for (size_t I : Order)
    Out[I] = run(Rs[I]);
  return Out;
}
