//===-- Snapshot.cpp ------------------------------------------------------===//

#include "service/Snapshot.h"

#include "service/Request.h"
#include "support/Json.h"

using namespace lc;

namespace {

void appendOrigin(std::string &J, const char *Name,
                  const ServiceSnapshot::OriginLatency &L) {
  J += json::quote(Name);
  J += ":{\"count\":" + std::to_string(L.Count);
  J += ",\"p50_us\":" + std::to_string(L.P50Us);
  J += ",\"p95_us\":" + std::to_string(L.P95Us);
  J += ",\"p99_us\":" + std::to_string(L.P99Us);
  J += "}";
}

} // namespace

std::string lc::renderSnapshotJson(const ServiceSnapshot &S) {
  std::string J = "{\"type\":\"stats\"";
  J += ",\"v\":" + std::to_string(kServiceSnapshotVersion);
  J += ",\"uptime_us\":" + std::to_string(S.UptimeUs);
  J += ",\"requests\":" + std::to_string(S.Requests);
  J += ",\"queue_depth\":" + std::to_string(S.QueueDepth);

  J += ",\"by_status\":{";
  for (size_t I = 0; I < kOutcomeStatusCount; ++I) {
    if (I)
      J += ",";
    J += json::quote(outcomeStatusName(static_cast<OutcomeStatus>(I)));
    J += ":" + std::to_string(S.StatusCounts[I]);
  }
  J += "}";

  J += ",\"by_origin\":{";
  for (int I = 0; I < 3; ++I) {
    if (I)
      J += ",";
    appendOrigin(J, substrateOriginName(static_cast<SubstrateOrigin>(I)),
                 S.ByOrigin[I]);
  }
  J += "}";

  J += ",\"sessions\":{\"resident\":" + std::to_string(S.SessionsResident);
  J += ",\"bytes\":" + std::to_string(S.SessionBytes);
  J += ",\"inserts\":" + std::to_string(S.SessionInserts);
  J += ",\"hits\":" + std::to_string(S.SessionHits);
  J += ",\"patches\":" + std::to_string(S.SessionPatches);
  J += ",\"evictions\":" + std::to_string(S.SessionEvictions);
  J += "}";

  // Memory pressure without a full --stats-json run: RSS always (0 when
  // /proc is unavailable), the allocation count only when this binary
  // links the counting operator new -- absent beats a fake zero, same
  // rule as the run report.
  J += ",\"mem\":{\"peak_rss_kb\":" + std::to_string(S.PeakRssKb);
  J += ",\"current_rss_kb\":" + std::to_string(S.CurrentRssKb);
  if (S.HeapAllocsAvailable)
    J += ",\"heap_allocs\":" + std::to_string(S.HeapAllocs);
  J += "}";

  J += ",\"events_emitted\":" + std::to_string(S.EventsEmitted);
  J += "}";
  return J;
}

std::string lc::renderHealthJson(const ServiceSnapshot &S) {
  std::string J = "{\"type\":\"health\"";
  J += ",\"v\":" + std::to_string(kServiceSnapshotVersion);
  J += ",\"status\":\"ok\"";
  J += ",\"uptime_us\":" + std::to_string(S.UptimeUs);
  J += ",\"requests\":" + std::to_string(S.Requests);
  J += ",\"sessions\":" + std::to_string(S.SessionsResident);
  J += ",\"queue_depth\":" + std::to_string(S.QueueDepth);
  J += "}";
  return J;
}
