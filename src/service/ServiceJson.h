//===-- ServiceJson.h - Wire format of the service layer -------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON encoding of `AnalysisRequest` / `AnalysisOutcome` for the CLI's
/// `--batch` (a file holding an array of request objects, or an object
/// with a "requests" array) and `--serve` (one request object per input
/// line, one outcome object per output line). Parsing is strict: unknown
/// request or option keys are errors, because a typo'd knob silently
/// ignored is exactly the option-soup failure mode the SessionOptions
/// builder exists to kill. The outcome encoding is stable and versioned
/// by `bench/outcome_schema.json`, validated in CI.
///
/// A request object:
///
///   {"id": "r1", "subject": "SPECjbb2000",      // or "file" / "source"
///    "loops": "all",                             // or a label, or [labels]
///    "priority": 5, "deadline_ms": 200,          // optional
///    "deadline_polls": 3,                        // optional, deterministic
///    "options": {"jobs": 4, "pivot": false}}     // optional overrides
///
/// The program naming (`subject` / `file`) is resolved by the caller --
/// the service itself only ever sees inline source -- so this header
/// exposes the unresolved reference alongside the parsed request.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SERVICE_SERVICEJSON_H
#define LC_SERVICE_SERVICEJSON_H

#include "service/Request.h"
#include "support/Json.h"

#include <iosfwd>
#include <string>

namespace lc {

/// Version of the wire envelope. Every outcome line the tool writes
/// carries `"v":2` as its first key; request lines carry `"v":2` too.
/// Lines without a "v" key are the legacy v1 envelope: `--serve` and
/// `--batch` still accept them for one release (emitting a
/// `wire-v1-deprecated` event when an event log is attached), the fleet
/// path rejects them with a typed `unsupported-version` outcome.
inline constexpr int kWireVersion = 2;

/// Default cap on the length of one wire line (requests and control
/// verbs). Lines past the cap are answered with an InvalidRequest
/// outcome instead of buffering without bound; `--max-line-bytes`
/// overrides it.
inline constexpr size_t kDefaultMaxLineBytes = 1u << 20;

/// Classifies the envelope of a parsed wire line. Returns kWireVersion
/// for a line carrying `"v":2`, 1 for a legacy line with no "v" key, and
/// any other integer the line declared verbatim. Returns 0 and sets
/// \p Error when the "v" value is not a JSON integer (or \p V is not an
/// object). Callers decide policy: --serve accepts 1 with a deprecation
/// event, the fleet front end rejects everything but kWireVersion.
int wireVersionOf(const json::Value &V, std::string &Error);

/// Reads one newline-terminated line from \p In, enforcing \p MaxBytes.
/// Returns false only at end of stream with nothing read. When a line
/// exceeds the cap, \p TooLong is set, the remainder of the line is
/// discarded (through its newline, so the stream is resynchronized), and
/// \p Line holds only the truncated prefix -- the caller answers with an
/// InvalidRequest outcome instead of parsing.
bool readLineBounded(std::istream &In, std::string &Line, size_t MaxBytes,
                     bool &TooLong);

/// How a request JSON named its program; exactly one field is non-empty
/// after a successful parse. The caller resolves Subject/File to source
/// text (the service layer never touches the filesystem or the subject
/// table itself).
struct RequestSourceRef {
  std::string Subject; ///< bundled Table 1 subject name
  std::string File;    ///< path to an .mj file
  std::string Source;  ///< inline program text
};

/// Parses one request object. On failure returns false and fills
/// \p Error; the caller typically turns that into an InvalidRequest
/// outcome rather than aborting the whole batch. An optional `"v"` key
/// is accepted and must equal kWireVersion -- callers that tolerate or
/// reject other versions classify with wireVersionOf() first.
bool parseAnalysisRequest(const json::Value &V, AnalysisRequest &R,
                          RequestSourceRef &Ref, std::string &Error);

/// Parses a batch document: a JSON array of request objects, or an object
/// {"requests": [...]}.
bool parseRequestBatch(const json::Value &V, std::vector<AnalysisRequest> &Rs,
                       std::vector<RequestSourceRef> &Refs,
                       std::string &Error);

/// Renders one outcome as a single-line JSON object (the --serve line
/// protocol; --batch emits one line per request too). When the outcome
/// carries valid per-request attribution (service Attribution on), an
/// "observability" object is appended after every stable key.
std::string renderOutcomeJson(const AnalysisOutcome &O);

/// Recognizes a `--serve` control line: `{"control": "stats"}` or
/// `{"control": "health"}`. Returns false when \p V is not a control
/// line at all (no "control" key -- the caller parses it as a request).
/// Returns true when it is one: \p Verb holds the verb, or \p Error the
/// reason the line is malformed (non-string verb, unknown verb, extra
/// keys -- same strictness as requests).
bool parseControlLine(const json::Value &V, std::string &Verb,
                      std::string &Error);

} // namespace lc

#endif // LC_SERVICE_SERVICEJSON_H
