//===-- Snapshot.h - Live service state snapshot ---------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-demand view of a live `--serve` process: rolling latency
/// quantiles per substrate origin (cold-built / warm / patched), request
/// counts by outcome status, batch queue depth, session-cache occupancy
/// and estimated bytes, uptime, and process memory pressure
/// (`mem::peakRssKb` / `mem::heapAllocs`). `AnalysisService::snapshot()`
/// assembles one from the service's rolling state; the wire serves it
/// through the `{"control":"stats"}` and `{"control":"health"}` verbs
/// (docs/API.md) and the event log embeds one every N requests when
/// auto-dumping is enabled.
///
/// Latency quantiles come from the same fixed power-of-two microsecond
/// histograms the metrics layer uses (TimingHistogram), so a reported
/// p99 is the *upper bound* of the bucket holding the p99 sample --
/// resolution is a factor of two, which is plenty for admission-control
/// decisions and keeps snapshots allocation-light.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SERVICE_SNAPSHOT_H
#define LC_SERVICE_SNAPSHOT_H

#include "service/Request.h"

#include <cstdint>
#include <string>

namespace lc {

/// Version of the snapshot shape (the "v" key on stats/health lines and
/// embedded snapshot events). Bump when the rendering changes shape.
inline constexpr int kServiceSnapshotVersion = 1;

/// Point-in-time state of one AnalysisService. Plain data: everything is
/// copied out under the service's single-threaded contract, so a
/// snapshot never dangles into live service state.
struct ServiceSnapshot {
  /// Rolling latency of requests served through one substrate origin.
  /// Quantiles are power-of-two bucket upper bounds in microseconds.
  struct OriginLatency {
    uint64_t Count = 0;
    uint64_t P50Us = 0;
    uint64_t P95Us = 0;
    uint64_t P99Us = 0;
  };

  uint64_t UptimeUs = 0;   ///< since service construction
  uint64_t Requests = 0;   ///< requests ever entered run()
  uint64_t QueueDepth = 0; ///< batch requests admitted but not yet run

  /// Outcome counts indexed by OutcomeStatus (Ok..UnsupportedVersion).
  uint64_t StatusCounts[kOutcomeStatusCount] = {};
  /// Latency indexed by SubstrateOrigin (Built, ReusedWarm,
  /// ReusedIncremental). Only requests that actually analyzed (not
  /// compile-error / invalid-request rejections) are recorded.
  OriginLatency ByOrigin[3];

  uint64_t SessionsResident = 0;
  uint64_t SessionBytes = 0; ///< approxSessionBytes over residents
  uint64_t SessionInserts = 0;
  uint64_t SessionHits = 0;
  uint64_t SessionPatches = 0;
  uint64_t SessionEvictions = 0;

  uint64_t PeakRssKb = 0;    ///< mem::peakRssKb(); 0 when unavailable
  uint64_t CurrentRssKb = 0; ///< mem::currentRssKb(); 0 when unavailable
  bool HeapAllocsAvailable = false; ///< lc_alloc_hook linked?
  uint64_t HeapAllocs = 0;

  uint64_t EventsEmitted = 0; ///< event-log lines written (0 = no log)
};

/// Renders the full snapshot as one line of JSON -- the answer to the
/// `{"control":"stats"}` wire verb and the payload of auto-dumped
/// "snapshot" events ({"type":"stats","v":1,...}).
std::string renderSnapshotJson(const ServiceSnapshot &S);

/// Renders the cheap liveness view -- the answer to
/// `{"control":"health"}`: uptime, request count, resident sessions,
/// queue depth, and a constant "ok" (the process answered; that is the
/// health check).
std::string renderHealthJson(const ServiceSnapshot &S);

} // namespace lc

#endif // LC_SERVICE_SNAPSHOT_H
