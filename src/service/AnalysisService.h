//===-- AnalysisService.h - Persistent multi-program service ---*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived layer between clients and the analysis engine. A
/// `LeakChecker` session is expensive -- call graph, PAG, Andersen solve,
/// CFL engine -- while the paper's workflow is many queries against few
/// programs ("once the important loops and code regions are specified by
/// the tool user, the rest of the approach is fully automated"). The
/// service amortizes that: it owns a cache of warm sessions keyed by
/// program content hash plus substrate fingerprint, LRU-evicted under a
/// configurable memory budget, and executes `AnalysisRequest`s against
/// them. Requests naming the same program share one substrate and fan
/// their per-loop work through the session's `ThreadPool`; deadlines and
/// cancellation degrade an outcome instead of failing it.
///
/// Batches are scheduled by priority (descending; ties keep submission
/// order) but outcomes always come back in submission order, so callers
/// index responses by request position or by echoed Id.
///
/// Edited programs take an incremental path: a request whose source
/// misses the cache is diffed (method-level declaration fingerprints)
/// against resident sessions with the same option fingerprint, and when
/// some session's program differs only in method bodies, that nearest
/// ancestor is *patched* across the edit (LeakChecker::patchFrom) instead
/// of cold-built -- re-lowering only changed methods and carrying the
/// Andersen fixed point, method summaries, and CFL memo over. The outcome
/// reports this as SubstrateOrigin::ReusedIncremental; reports stay
/// byte-identical to a from-scratch build.
///
/// The service is single-threaded by contract: one thread calls run() /
/// runBatch() at a time (each request parallelizes internally). This is
/// the layer future multi-client serving and sharding plug into.
///
/// The service is also the observability plane's anchor: every request
/// gets a monotonic sequence number, trace spans recorded while serving
/// it carry that number (Tracer::setCurrentRequest), each outcome embeds
/// a `RequestObservability` delta of exactly the work it caused, typed
/// events stream to an attached `ServiceEventLog`, and `snapshot()`
/// assembles the live view (latency quantiles per origin, status counts,
/// cache occupancy) the `stats`/`health` wire verbs serve.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SERVICE_ANALYSISSERVICE_H
#define LC_SERVICE_ANALYSISSERVICE_H

#include "core/LeakChecker.h"
#include "service/Request.h"
#include "service/Snapshot.h"

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

namespace lc {

class ServiceEventLog;

/// Configuration of the session cache.
struct ServiceOptions {
  /// Maximum number of warm sessions kept resident.
  size_t MaxSessions = 8;
  /// Approximate memory budget over all cached sessions. Eviction keeps
  /// the *estimated* footprint (see AnalysisService::approxSessionBytes)
  /// under this; the estimate is a deliberately simple linear model of
  /// program and PAG size, not an allocator census.
  uint64_t MemoryBudgetBytes = 512ull << 20;
  /// Per-request attribution: fill AnalysisOutcome::Observability and
  /// stamp trace spans with the serving request's sequence number. On by
  /// default; the throughput bench's baseline leg turns it off so the
  /// observability leg measures the whole plane against a clean floor.
  /// Never affects analysis results -- reports are byte-identical either
  /// way.
  bool Attribution = true;
};

class AnalysisService {
public:
  explicit AnalysisService(ServiceOptions Opts = {});
  ~AnalysisService();

  /// Executes one request: resolves (or builds) the session for the
  /// request's program, then runs its loop set under its deadline. Never
  /// throws on analysis-level failure -- compile errors, unknown labels,
  /// expired deadlines all come back as typed outcomes.
  AnalysisOutcome run(const AnalysisRequest &R);

  /// Executes a queue of requests, highest Priority first (stable for
  /// ties). Outcomes are returned in *submission* order regardless of
  /// execution order.
  std::vector<AnalysisOutcome> runBatch(const std::vector<AnalysisRequest> &Rs);

  /// Warm sessions currently resident.
  size_t cachedSessions() const { return Lru.size(); }
  /// Estimated footprint of the resident sessions.
  uint64_t residentBytes() const { return ResidentBytes; }

  /// Service-level counters: service-session-builds / -hits / -evictions
  /// plus per-request degradation counts. Monotonic over the service's
  /// life.
  const Stats &stats() const { return ServiceStats; }

  /// Attaches a structured event log (non-owning; null detaches). The
  /// log must outlive the service or be detached first. Events stream
  /// from the next request on.
  void setEventLog(ServiceEventLog *Log) { this->Log = Log; }

  /// Auto-dumps a "snapshot" event into the event log every \p N
  /// requests (0, the default, disables auto-dumping).
  void setSnapshotEvery(uint64_t N) { SnapshotEvery = N; }

  /// Assembles the live view of this service: rolling latency quantiles
  /// per substrate origin, request counts by status, queue depth,
  /// session-cache occupancy and bytes, uptime, and process memory
  /// gauges. Cheap enough to answer on every `stats` wire verb.
  ServiceSnapshot snapshot() const;

  /// The footprint estimate used for the memory budget (exposed so tests
  /// can size budgets that force eviction deterministically).
  static uint64_t approxSessionBytes(const LeakChecker &Session);

  /// Content hash of a program source (the cache key's program part).
  static uint64_t programHash(std::string_view Source);

private:
  struct Session {
    uint64_t Key = 0;
    /// Option part of the key (SessionOptions::substrateFingerprint):
    /// only sessions solved under identical substrate knobs are legal
    /// patch ancestors for an edited program.
    uint64_t OptionsFp = 0;
    std::unique_ptr<LeakChecker> Checker;
    uint64_t ApproxBytes = 0;
  };

  /// Returns the warm session for (source, substrate fingerprint),
  /// building and inserting it on a miss. A miss first tries the
  /// nearest-ancestor incremental path (see patchNearestAncestor); only
  /// when no cached session can be patched does it cold-build. Null when
  /// the program does not compile (\p Error then carries the
  /// diagnostics). \p Origin reports which path served. The returned
  /// pointer stays valid for the current request only (a later request
  /// may evict it).
  LeakChecker *sessionFor(const AnalysisRequest &R, SubstrateOrigin &Origin,
                          std::string &Error);
  /// The edit workload's fast path: among cached sessions built under
  /// the same option fingerprint, finds the one whose program differs
  /// from \p R's source by the fewest body-level method edits and is
  /// patchable at all, then carries its substrate across the edit with
  /// LeakChecker::patchFrom. On success the ancestor's cache entry is
  /// replaced by the patched session under \p NewKey (the ancestor's
  /// solver state was consumed). Returns null when no candidate exists
  /// or the patch bails (the caller cold-builds; ancestors are untouched
  /// by failed attempts).
  LeakChecker *patchNearestAncestor(const AnalysisRequest &R,
                                    uint64_t OptionsFp, uint64_t NewKey);
  void insertSession(Session S, uint64_t Key);
  void evictOver(size_t KeepKey);

  ServiceOptions Opts;
  /// LRU list, most-recently-used first; the map indexes into it.
  std::list<Session> Lru;
  std::unordered_map<uint64_t, std::list<Session>::iterator> ByKey;
  uint64_t ResidentBytes = 0;
  Stats ServiceStats;

  // --- Observability plane ------------------------------------------------
  ServiceEventLog *Log = nullptr; ///< non-owning; null = no event stream
  uint64_t SnapshotEvery = 0;     ///< auto-dump period in requests; 0 = off
  uint64_t RequestSeq = 0;        ///< requests ever entered run()
  /// Construction time; uptime and event/queue timestamps are relative
  /// to it.
  std::chrono::steady_clock::time_point Epoch;
  /// Set while runBatch() drains its queue: requests admitted in this
  /// batch but not yet executed (snapshot's queue_depth) and the batch
  /// entry time each executed request's queue wait is measured from.
  uint64_t QueueDepth = 0;
  std::chrono::steady_clock::time_point BatchSubmit;
  bool InBatch = false;
  /// Rolling latency per SubstrateOrigin over requests that analyzed
  /// (rejections -- compile-error / invalid-request -- are not latency).
  TimingHistogram OriginLatency[3];
  uint64_t OriginCounts[3] = {};
  /// Outcome counts indexed by OutcomeStatus.
  uint64_t StatusCounts[kOutcomeStatusCount] = {};
  uint64_t SessionInserts = 0; ///< insertSession calls (builds + patches)
};

} // namespace lc

#endif // LC_SERVICE_ANALYSISSERVICE_H
