//===-- Request.cpp -------------------------------------------------------===//

#include "service/Request.h"

using namespace lc;

const char *lc::outcomeStatusName(OutcomeStatus S) {
  switch (S) {
  case OutcomeStatus::Ok:
    return "ok";
  case OutcomeStatus::DeadlineExpired:
    return "deadline-expired";
  case OutcomeStatus::Cancelled:
    return "cancelled";
  case OutcomeStatus::LoopNotFound:
    return "loop-not-found";
  case OutcomeStatus::CompileError:
    return "compile-error";
  case OutcomeStatus::InvalidRequest:
    return "invalid-request";
  case OutcomeStatus::Overloaded:
    return "overloaded";
  case OutcomeStatus::WorkerLost:
    return "worker-lost";
  case OutcomeStatus::UnsupportedVersion:
    return "unsupported-version";
  }
  return "ok";
}

const char *lc::substrateOriginName(SubstrateOrigin O) {
  switch (O) {
  case SubstrateOrigin::Built:
    return "built";
  case SubstrateOrigin::ReusedWarm:
    return "warm";
  case SubstrateOrigin::ReusedIncremental:
    return "patched";
  }
  return "built";
}
