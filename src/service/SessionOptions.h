//===-- SessionOptions.h - Validated engine configuration ------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One validated bag of knobs for an analysis session, replacing the
/// scattered trio the engine grew historically (`LeakOptions`,
/// `CflOptions::Memoize`, `LeakOptions::Jobs`). A `SessionOptions` can
/// only be obtained from `SessionOptionsBuilder`, whose `build()` rejects
/// inconsistent combinations -- a zero worker count, memoization knobs
/// that contradict each other, out-of-range CFL budgets -- so a request
/// can no longer construct an engine in a state the engine itself would
/// misbehave in. CLI flag parsing and JSON request decoding are pure
/// translations into builder calls; every validation rule lives here,
/// once.
///
/// The struct splits conceptually in two, and the service layer's session
/// cache depends on that split:
///
///   - *substrate* knobs (worker count, CFL traversal configuration)
///     shape the warm session itself -- `substrateFingerprint()` hashes
///     exactly these, and requests agreeing on them share one cached
///     substrate;
///   - *per-run* knobs (pivot mode, thread modeling, context depth, ...)
///     only affect a single `analyzeLoop` run and may vary freely between
///     requests against the same session.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SERVICE_SESSIONOPTIONS_H
#define LC_SERVICE_SESSIONOPTIONS_H

#include "leak/LeakAnalysis.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lc {

/// Validated, internally-consistent engine configuration. Construct via
/// SessionOptionsBuilder.
class SessionOptions {
public:
  /// Default configuration (always valid): all cores, memoized CFL,
  /// paper-default leak options. Out of line so the worker count resolves
  /// eagerly -- a SessionOptions never carries the legacy "0 = auto"
  /// sentinel.
  SessionOptions();

  /// The per-run leak options this configuration denotes. The request
  /// path hands exactly this to the engine, so a validated SessionOptions
  /// and the engine can never disagree.
  const LeakOptions &leakOptions() const { return Opts; }

  /// Resolved worker count (>= 1; never the "0 = auto" sentinel).
  uint32_t jobs() const { return Opts.Jobs; }

  /// Hash of the substrate-shaping knobs only (jobs, CFL traversal
  /// configuration). Two SessionOptions with equal fingerprints can share
  /// one warm session; per-run knobs are excluded on purpose.
  uint64_t substrateFingerprint() const;

private:
  friend class SessionOptionsBuilder;
  LeakOptions Opts;
};

/// Accumulates settings, then validates the whole configuration at once.
/// `build()` returns nullopt and fills `errors()` when any rule fails;
/// every violation is reported, not just the first.
class SessionOptionsBuilder {
public:
  SessionOptionsBuilder();

  // --- Substrate knobs ------------------------------------------------------

  /// Worker threads for per-site query fan-out. 1 = sequential path.
  /// Zero is rejected at build() -- callers that want "all cores" say so
  /// explicitly via allCores().
  SessionOptionsBuilder &jobs(uint32_t N);
  /// Resolve the worker count to the machine's core count.
  SessionOptionsBuilder &allCores();
  /// Enable/disable the shared CFL sub-traversal memo cache.
  SessionOptionsBuilder &cflMemoize(bool On);
  /// Memo-cache capacity per shard. Setting a capacity while also
  /// disabling memoization is contradictory and rejected at build().
  SessionOptionsBuilder &cflCacheCapacity(uint32_t EntriesPerShard);
  /// CFL node budget before a query falls back to Andersen (> 0).
  SessionOptionsBuilder &cflNodeBudget(uint64_t Budget);
  /// CFL heap-hop limit (must fit the memo key's 15-bit hop field).
  SessionOptionsBuilder &cflMaxHeapHops(uint32_t Hops);
  /// CFL call-string k-limit (> 0).
  SessionOptionsBuilder &cflMaxCallDepth(uint32_t Depth);
  /// Build the method-summary table with the substrate and compose
  /// summaries at call sites during demand queries (`--no-summaries`
  /// disables). Substrate knob: the table is part of the warm session,
  /// so the fingerprint includes it.
  SessionOptionsBuilder &summaries(bool On);

  // --- Per-run knobs --------------------------------------------------------

  SessionOptionsBuilder &pivotMode(bool On);
  SessionOptionsBuilder &modelThreads(bool On);
  SessionOptionsBuilder &libraryRule(bool On);
  SessionOptionsBuilder &reportLibrarySites(bool On);
  SessionOptionsBuilder &contextSensitive(bool On);
  SessionOptionsBuilder &modelDestructiveUpdates(bool On);
  SessionOptionsBuilder &escapePrefilter(bool On);
  SessionOptionsBuilder &cflCorroborate(bool On);
  SessionOptionsBuilder &contextDepth(uint32_t Depth);
  SessionOptionsBuilder &maxContextsPerSite(uint32_t Max);
  // Note: there is deliberately no cancel() knob. The cancellation token
  // rides on the AnalysisRequest -- SessionOptions is pure configuration,
  // fingerprintable and reusable across requests.

  /// Seeds every knob from a legacy LeakOptions bag (used by the
  /// deprecated entry points; new code should speak builder calls).
  SessionOptionsBuilder &fromLegacy(const LeakOptions &Legacy);

  /// Validates the accumulated configuration. On success returns the
  /// sealed options; on failure returns nullopt and errors() lists every
  /// violated rule.
  std::optional<SessionOptions> build();

  /// Validation diagnostics of the last build() (empty on success).
  const std::vector<std::string> &errors() const { return Errors; }

private:
  LeakOptions Opts;
  bool JobsSet = false;        ///< jobs()/allCores() called
  bool JobsExplicitZero = false;
  bool MemoizeOff = false;     ///< cflMemoize(false) called
  bool CapacitySet = false;    ///< cflCacheCapacity() called
  std::vector<std::string> Errors;
};

} // namespace lc

#endif // LC_SERVICE_SESSIONOPTIONS_H
