//===-- EventLog.cpp ------------------------------------------------------===//

#include "service/EventLog.h"

#include "support/Json.h"

using namespace lc;

ServiceEventLog::ServiceEventLog(const std::string &Path)
    : Epoch(std::chrono::steady_clock::now()) {
  Out = std::fopen(Path.c_str(), "w");
}

ServiceEventLog::~ServiceEventLog() {
  if (Out)
    std::fclose(Out);
}

ServiceEventLog::Event::Event(ServiceEventLog *Log, const char *Type)
    : Log(Log) {
  if (!Log)
    return;
  uint64_t TsUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Log->Epoch)
          .count());
  Line = "{\"seq\":" + std::to_string(++Log->Seq);
  Line += ",\"ts_us\":" + std::to_string(TsUs);
  Line += ",\"v\":" + std::to_string(kServiceEventVersion);
  Line += ",\"type\":";
  Line += json::quote(Type);
}

ServiceEventLog::Event::~Event() {
  if (!Log)
    return;
  Line += "}\n";
  // One write + one flush per event: the crash-loss contract is "at most
  // the line being written", and the service emits a handful of events
  // per request, so the flush is noise next to the analysis itself (the
  // service_throughput observability leg gates this at <= 3%).
  std::fwrite(Line.data(), 1, Line.size(), Log->Out);
  std::fflush(Log->Out);
}

ServiceEventLog::Event &ServiceEventLog::Event::num(const char *Key,
                                                    uint64_t Value) {
  if (Log) {
    Line += ",\"";
    Line += Key;
    Line += "\":" + std::to_string(Value);
  }
  return *this;
}

ServiceEventLog::Event &ServiceEventLog::Event::str(const char *Key,
                                                    std::string_view Value) {
  if (Log) {
    Line += ",\"";
    Line += Key;
    Line += "\":" + json::quote(Value);
  }
  return *this;
}

ServiceEventLog::Event &ServiceEventLog::Event::raw(const char *Key,
                                                    std::string_view Json) {
  if (Log) {
    Line += ",\"";
    Line += Key;
    Line += "\":";
    Line += Json;
  }
  return *this;
}
