//===-- Request.h - The analysis request/response API ----------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable request/response surface every client of the analysis
/// engine speaks -- the CLI's single-shot mode, `--batch`, `--serve`, the
/// benches, and library embedders all construct `AnalysisRequest`s and
/// consume `AnalysisOutcome`s. One request names a program (inline source
/// or, at the service layer, a cached session), a loop set (explicit
/// labels or every labeled loop), per-request option overrides, a
/// deadline/cancellation token, and a scheduling priority. One outcome is
/// either a full set of per-loop results or a *typed degradation*:
/// deadline-expired-with-a-partial-prefix, cancelled, loop-not-found
/// (with the known labels), compile-error (with diagnostics), or
/// invalid-request (with the validation errors). Clients switch on the
/// status; nothing is signalled through empty vectors or nullopt any
/// more.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SERVICE_REQUEST_H
#define LC_SERVICE_REQUEST_H

#include "service/SessionOptions.h"

#include <string>
#include <vector>

namespace lc {

/// Which loops of the program a request checks.
struct LoopSet {
  /// Explicit loop/region labels, checked in the given order. Empty +
  /// AllLabeled => every labeled reachable loop in loop order.
  std::vector<std::string> Labels;
  bool AllLabeled = false;

  static LoopSet allLabeled() {
    LoopSet S;
    S.AllLabeled = true;
    return S;
  }
  static LoopSet of(std::vector<std::string> Labels) {
    LoopSet S;
    S.Labels = std::move(Labels);
    return S;
  }
};

/// One unit of work for the analysis service.
struct AnalysisRequest {
  /// Client-chosen identifier, echoed verbatim in the outcome so batched
  /// responses can be correlated.
  std::string Id;
  /// Program source (MJ). At the service layer the session cache is keyed
  /// by a content hash of exactly this string.
  std::string Source;
  /// Human-readable name of the program (subject name or file path);
  /// diagnostic only.
  std::string ProgramName;
  /// The loops to check.
  LoopSet Loops;
  /// Validated engine configuration for this request.
  SessionOptions Options;
  /// Larger runs first within a batch; ties keep submission order.
  int32_t Priority = 0;
  /// Deadline/cancellation for this request. The token is polled between
  /// loops and threaded into each loop's analysis; loops (and, within a
  /// loop, per-site queries) completed before it trips are still
  /// reported.
  CancellationToken Deadline;
};

/// How a request ended.
enum class OutcomeStatus : uint8_t {
  Ok,              ///< every requested loop ran to completion
  DeadlineExpired, ///< deadline hit; Results holds the completed prefix
  Cancelled,       ///< cancel() hit; Results holds the completed prefix
  LoopNotFound,    ///< a requested label does not exist (KnownLabels set)
  CompileError,    ///< the program failed to compile (Diagnostics set)
  InvalidRequest,  ///< the request itself is malformed (Diagnostics set)
  // Fleet-path degradations (src/fleet). The front end mints these; a
  // single-process --serve never produces them.
  Overloaded,         ///< admission control rejected: in-flight queue full
  WorkerLost,         ///< the routed worker died mid-request (it respawns)
  UnsupportedVersion, ///< wire envelope version not accepted on this path
};

/// Number of OutcomeStatus values; sizes by-status counter arrays.
inline constexpr size_t kOutcomeStatusCount = 9;

/// Names an outcome status for logs and JSON ("ok", "deadline-expired"...).
const char *outcomeStatusName(OutcomeStatus S);

/// How the session that served a request came to be.
enum class SubstrateOrigin : uint8_t {
  Built,             ///< cold build: compiled and solved from scratch
  ReusedWarm,        ///< exact cache hit: an existing session served as-is
  ReusedIncremental, ///< patched: a cached ancestor session was carried
                     ///< across a body-level edit (LeakChecker::patchFrom)
};

/// Names an origin for logs and JSON ("built", "warm", "patched").
const char *substrateOriginName(SubstrateOrigin O);

/// Version of the per-request attribution payload (the "observability"
/// object on each wire outcome line). Bump when the shape changes; the
/// object is validated as part of bench/outcome_schema.json.
inline constexpr int kObservabilityVersion = 1;

/// Per-request observability deltas, attributed by the analysis service
/// to exactly the work this request caused: wall time inside the
/// service (session resolution included), batch queue wait, the phase
/// timings it paid for (substrate solve/summarize only when this request
/// built or patched the session), its CFL memo hit/miss split, evictions
/// it triggered, and its heap-allocation delta when the counting
/// operator new is linked. Everything here is telemetry -- two valid
/// runs may disagree -- and nothing here feeds back into analysis
/// results (reports are byte-identical with attribution on or off).
struct RequestObservability {
  /// False for outcomes produced outside the service (direct
  /// LeakChecker::run) or with ServiceOptions::Attribution off; the wire
  /// omits the object entirely then.
  bool Valid = false;
  /// Service-assigned monotonic request sequence number (1-based). Trace
  /// spans recorded while serving this request carry the same number as
  /// their "req" arg, which is the trace<->wire join key.
  uint64_t Seq = 0;
  uint64_t WallUs = 0;  ///< service-side wall time for this request
  uint64_t QueueUs = 0; ///< batch wait before execution began (0 direct)
  /// Phase timings billed to this request, in microseconds.
  uint64_t AndersenUs = 0;     ///< substrate solve (0 on a warm hit)
  uint64_t SummarizeUs = 0;    ///< summary build (0 on a warm hit)
  uint64_t LeakAnalysisUs = 0; ///< per-loop analysis over all loops
  /// CFL memo-cache split over this request's queries (warmth- and
  /// schedule-dependent by nature).
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  /// Sessions evicted to make room while serving this request.
  uint64_t EvictionsCaused = 0;
  /// operator-new delta while serving; valid only when lc_alloc_hook is
  /// linked into the binary (HeapAllocsValid), omitted on the wire
  /// otherwise.
  bool HeapAllocsValid = false;
  uint64_t HeapAllocs = 0;
};

/// The response to one AnalysisRequest.
struct AnalysisOutcome {
  /// The request's Id, echoed.
  std::string Id;
  OutcomeStatus Status = OutcomeStatus::Ok;
  /// Per-loop results, in request order (loop order for AllLabeled).
  /// On DeadlineExpired/Cancelled this is the completed prefix; the last
  /// entry may itself be partial (LeakAnalysisResult::Partial, carrying
  /// its per-site completion counts).
  std::vector<LeakAnalysisResult> Results;
  /// Label of each Results entry (aligned), so outcomes are meaningful
  /// without the Program at hand.
  std::vector<std::string> LoopLabels;
  /// renderLeakReport() text of each Results entry (aligned): exactly what
  /// the single-shot CLI prints, so batch outcomes byte-compare against
  /// one-loop-per-process runs.
  std::vector<std::string> RenderedReports;
  /// Labels of requested loops the deadline cut before their analysis
  /// started (empty unless degraded).
  std::vector<std::string> LoopsNotRun;
  /// For LoopNotFound: the label that failed to resolve, and every label
  /// the program does define (the CLI prints these).
  std::string MissingLabel;
  std::vector<std::string> KnownLabels;
  /// For CompileError / InvalidRequest: what went wrong.
  std::string Diagnostics;
  /// True when this outcome's session was built by this request (a cache
  /// miss at the service layer; always true for direct LeakChecker::run).
  /// Incremental reuse counts as built: substrate work ran (and its stats
  /// are populated), just far less of it.
  bool SubstrateBuilt = true;
  /// Finer-grained than SubstrateBuilt: distinguishes a cold build from
  /// an incremental patch of a cached ancestor (the --serve edit
  /// workload). Always Built for direct LeakChecker::run.
  SubstrateOrigin Origin = SubstrateOrigin::Built;
  /// Substrate construction statistics, populated only when
  /// SubstrateBuilt (the andersen-* counters land exactly once per
  /// session, which is how the batch tests assert single construction).
  Stats SubstrateStats;
  /// Per-request attribution filled by the analysis service when
  /// ServiceOptions::Attribution is on (Valid false otherwise).
  RequestObservability Observability;

  bool ok() const { return Status == OutcomeStatus::Ok; }
  /// True when any completed loop reported at least one leak (the CLI's
  /// exit-2 condition).
  bool anyLeaks() const {
    for (const LeakAnalysisResult &R : Results)
      if (!R.Reports.empty())
        return true;
    return false;
  }
};

} // namespace lc

#endif // LC_SERVICE_REQUEST_H
