//===-- SessionOptions.cpp ------------------------------------------------===//

#include "service/SessionOptions.h"

#include "support/ThreadPool.h"

using namespace lc;

namespace {

/// FNV-1a over a little scalar soup; good enough to key a session cache.
uint64_t hashMix(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 0x100000001b3ULL;
  return H;
}

} // namespace

SessionOptions::SessionOptions() {
  Opts.Jobs = ThreadPool::defaultJobs();
}

uint64_t SessionOptions::substrateFingerprint() const {
  uint64_t H = 0xcbf29ce484222325ULL;
  H = hashMix(H, Opts.Jobs);
  H = hashMix(H, Opts.Cfl.Memoize ? 1 : 0);
  H = hashMix(H, Opts.Cfl.CacheShardCapacity);
  H = hashMix(H, Opts.Cfl.NodeBudget);
  H = hashMix(H, Opts.Cfl.MaxHeapHops);
  H = hashMix(H, Opts.Cfl.MaxCallDepth);
  H = hashMix(H, Opts.Summaries ? 1 : 0);
  return H;
}

SessionOptionsBuilder::SessionOptionsBuilder() {
  // The builder's resting state resolves "all cores" eagerly: a sealed
  // SessionOptions never carries the 0 sentinel, so downstream code has
  // one less invalid state to defend against.
  Opts.Jobs = ThreadPool::defaultJobs();
}

SessionOptionsBuilder &SessionOptionsBuilder::jobs(uint32_t N) {
  JobsSet = true;
  JobsExplicitZero = N == 0;
  if (N != 0)
    Opts.Jobs = N;
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::allCores() {
  JobsSet = true;
  JobsExplicitZero = false;
  Opts.Jobs = ThreadPool::defaultJobs();
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::cflMemoize(bool On) {
  MemoizeOff = !On;
  Opts.Cfl.Memoize = On;
  return *this;
}

SessionOptionsBuilder &
SessionOptionsBuilder::cflCacheCapacity(uint32_t EntriesPerShard) {
  CapacitySet = true;
  Opts.Cfl.CacheShardCapacity = EntriesPerShard;
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::cflNodeBudget(uint64_t Budget) {
  Opts.Cfl.NodeBudget = Budget;
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::cflMaxHeapHops(uint32_t Hops) {
  Opts.Cfl.MaxHeapHops = Hops;
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::cflMaxCallDepth(uint32_t Depth) {
  Opts.Cfl.MaxCallDepth = Depth;
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::summaries(bool On) {
  Opts.Summaries = On;
  return *this;
}

SessionOptionsBuilder &SessionOptionsBuilder::pivotMode(bool On) {
  Opts.PivotMode = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::modelThreads(bool On) {
  Opts.ModelThreads = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::libraryRule(bool On) {
  Opts.LibraryRule = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::reportLibrarySites(bool On) {
  Opts.ReportLibrarySites = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::contextSensitive(bool On) {
  Opts.ContextSensitive = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::modelDestructiveUpdates(bool On) {
  Opts.ModelDestructiveUpdates = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::escapePrefilter(bool On) {
  Opts.EscapePrefilter = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::cflCorroborate(bool On) {
  Opts.CflCorroborate = On;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::contextDepth(uint32_t Depth) {
  Opts.ContextDepth = Depth;
  return *this;
}
SessionOptionsBuilder &SessionOptionsBuilder::maxContextsPerSite(uint32_t Max) {
  Opts.MaxContextsPerSite = Max;
  return *this;
}
SessionOptionsBuilder &
SessionOptionsBuilder::fromLegacy(const LeakOptions &Legacy) {
  Opts = Legacy;
  if (Opts.Jobs == 0)
    Opts.Jobs = ThreadPool::defaultJobs();
  JobsSet = true;
  JobsExplicitZero = false;
  MemoizeOff = !Legacy.Cfl.Memoize;
  CapacitySet = false;
  return *this;
}

std::optional<SessionOptions> SessionOptionsBuilder::build() {
  Errors.clear();
  if (JobsExplicitZero)
    Errors.push_back("jobs must be >= 1 (use allCores() for the machine "
                     "default; the 0 sentinel is not a valid session "
                     "configuration)");
  if (MemoizeOff && CapacitySet)
    Errors.push_back("contradictory memo flags: a CFL cache capacity was "
                     "configured while memoization is disabled");
  if (MemoizeOff && Opts.CflCorroborate && Opts.Cfl.NodeBudget == 0)
    Errors.push_back("cfl node budget must be > 0 when corroboration runs "
                     "without the memo cache");
  if (Opts.Cfl.NodeBudget == 0)
    Errors.push_back("cfl node budget must be > 0 (a zero budget makes "
                     "every query fall back)");
  if (Opts.Cfl.MaxHeapHops >= 0x8000)
    Errors.push_back("cfl max heap hops must be < 32768 (memo keys pack "
                     "the hop budget into 15 bits)");
  if (Opts.Cfl.MaxCallDepth == 0)
    Errors.push_back("cfl max call depth must be > 0");
  if (Opts.Cfl.Memoize && Opts.Cfl.CacheShardCapacity == 0)
    Errors.push_back("contradictory memo flags: memoization is enabled "
                     "with a zero cache capacity");
  if (Opts.ContextDepth == 0)
    Errors.push_back("context depth must be > 0");
  if (Opts.MaxContextsPerSite == 0)
    Errors.push_back("max contexts per site must be > 0");
  if (!Errors.empty())
    return std::nullopt;
  SessionOptions Out;
  Out.Opts = Opts;
  return Out;
}
