//===-- EventLog.h - Structured service event log --------------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--event-log` stream: one line of JSON per typed service event
/// (request received/admitted/completed/degraded, session
/// insert/hit/patch/evict, deadline expiry, cancellation, periodic
/// snapshots). Where the run report answers "what did this process do
/// overall" and a trace answers "where did the time go", the event log is
/// the *operational* record of a long-lived `--serve` process: every
/// line carries a monotonic sequence number and a microsecond timestamp,
/// and the stream is flushed after every event, so a crashed or killed
/// server loses at most the line being written.
///
/// Events are versioned (`"v"`) and validated in CI against
/// `bench/event_schema.json` by `validate_report.py --events`, which also
/// checks the cross-line invariants: sequence numbers strictly
/// increasing, timestamps non-decreasing, and every completed/degraded
/// event paired with a preceding received event for the same request.
///
/// The log is single-writer, matching the analysis service's
/// single-threaded contract; it performs no locking.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SERVICE_EVENTLOG_H
#define LC_SERVICE_EVENTLOG_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace lc {

/// Version of the event-line shape (the "v" key on every line). Bump when
/// bench/event_schema.json changes shape.
inline constexpr int kServiceEventVersion = 1;

class ServiceEventLog {
public:
  /// Opens \p Path for writing (truncating). ok() reports whether the
  /// open succeeded; a failed log swallows every event silently, so
  /// callers should check ok() once at startup and fail fast.
  explicit ServiceEventLog(const std::string &Path);
  ~ServiceEventLog();

  ServiceEventLog(const ServiceEventLog &) = delete;
  ServiceEventLog &operator=(const ServiceEventLog &) = delete;

  bool ok() const { return Out != nullptr; }

  /// Events emitted so far (== the last line's sequence number).
  uint64_t eventsEmitted() const { return Seq; }

  /// One event line under construction. Append fields with num()/str()/
  /// raw(); the destructor writes the completed line and flushes it.
  /// Field keys must be string literals (they are written verbatim).
  class Event {
  public:
    Event(ServiceEventLog *Log, const char *Type);
    ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    Event(Event &&O) noexcept : Log(O.Log), Line(std::move(O.Line)) {
      O.Log = nullptr;
    }

    Event &num(const char *Key, uint64_t Value);
    Event &str(const char *Key, std::string_view Value);
    /// Embeds \p Json verbatim as the value of \p Key (it must already be
    /// a complete JSON document, e.g. a rendered snapshot object).
    Event &raw(const char *Key, std::string_view Json);

  private:
    ServiceEventLog *Log; ///< null = no-op event (log absent or failed)
    std::string Line;
  };

  /// Starts one event of \p Type (a literal from the event taxonomy).
  /// Assigns the next sequence number and timestamps the line.
  Event event(const char *Type) { return Event(ok() ? this : nullptr, Type); }

private:
  friend class Event;

  std::FILE *Out = nullptr;
  uint64_t Seq = 0;
  std::chrono::steady_clock::time_point Epoch;
};

} // namespace lc

#endif // LC_SERVICE_EVENTLOG_H
