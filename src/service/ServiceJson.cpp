//===-- ServiceJson.cpp ---------------------------------------------------===//

#include "service/ServiceJson.h"

#include <algorithm>
#include <cmath>
#include <istream>

using namespace lc;
using lc::json::Value;

namespace {

/// A non-negative integral number (request files carry no fractional
/// budgets; 3.5 jobs is a typo, not a request).
/// Rejects a repeated object key. The JSON parser keeps members in
/// source order including duplicates, so without this check a repeated
/// key would silently last-win -- the same typo-swallowing failure mode
/// strict unknown-key rejection exists to kill.
bool checkDuplicate(std::vector<const std::string *> &Seen,
                    const std::string &Key, const char *What,
                    std::string &Error) {
  for (const std::string *S : Seen)
    if (*S == Key) {
      Error = std::string("duplicate ") + What + " key \"" + Key + "\"";
      return false;
    }
  Seen.push_back(&Key);
  return true;
}

bool asCount(const Value &V, uint64_t &Out) {
  if (!V.isNumber())
    return false;
  double D = V.asNumber();
  if (D < 0 || D != std::floor(D))
    return false;
  Out = static_cast<uint64_t>(D);
  return true;
}

bool parseOptions(const Value &V, SessionOptionsBuilder &B,
                  std::string &Error) {
  if (!V.isObject()) {
    Error = "\"options\" must be an object";
    return false;
  }
  std::vector<const std::string *> Seen;
  for (const auto &[Key, Val] : V.members()) {
    if (!checkDuplicate(Seen, Key, "options", Error))
      return false;
    uint64_t N = 0;
    if (Key == "jobs") {
      if (Val.isString() && Val.asString() == "all") {
        B.allCores();
      } else if (asCount(Val, N)) {
        B.jobs(static_cast<uint32_t>(N));
      } else {
        Error = "options.jobs must be a non-negative integer or \"all\"";
        return false;
      }
      continue;
    }
    if (Key == "memoize" || Key == "pivot" || Key == "model_threads" ||
        Key == "library_rule" || Key == "report_library_sites" ||
        Key == "context_sensitive" || Key == "model_destructive_updates" ||
        Key == "escape_prefilter" || Key == "cfl_corroborate" ||
        Key == "summaries") {
      if (!Val.isBool()) {
        Error = "options." + Key + " must be a boolean";
        return false;
      }
      bool On = Val.asBool();
      if (Key == "memoize")
        B.cflMemoize(On);
      else if (Key == "pivot")
        B.pivotMode(On);
      else if (Key == "model_threads")
        B.modelThreads(On);
      else if (Key == "library_rule")
        B.libraryRule(On);
      else if (Key == "report_library_sites")
        B.reportLibrarySites(On);
      else if (Key == "context_sensitive")
        B.contextSensitive(On);
      else if (Key == "model_destructive_updates")
        B.modelDestructiveUpdates(On);
      else if (Key == "escape_prefilter")
        B.escapePrefilter(On);
      else if (Key == "cfl_corroborate")
        B.cflCorroborate(On);
      else
        B.summaries(On);
      continue;
    }
    if (Key == "cache_capacity" || Key == "node_budget" ||
        Key == "max_heap_hops" || Key == "max_call_depth" ||
        Key == "context_depth" || Key == "max_contexts_per_site") {
      if (!asCount(Val, N)) {
        Error = "options." + Key + " must be a non-negative integer";
        return false;
      }
      if (Key == "cache_capacity")
        B.cflCacheCapacity(static_cast<uint32_t>(N));
      else if (Key == "node_budget")
        B.cflNodeBudget(N);
      else if (Key == "max_heap_hops")
        B.cflMaxHeapHops(static_cast<uint32_t>(N));
      else if (Key == "max_call_depth")
        B.cflMaxCallDepth(static_cast<uint32_t>(N));
      else if (Key == "context_depth")
        B.contextDepth(static_cast<uint32_t>(N));
      else
        B.maxContextsPerSite(static_cast<uint32_t>(N));
      continue;
    }
    Error = "unknown option \"" + Key + "\"";
    return false;
  }
  return true;
}

bool parseLoops(const Value &V, LoopSet &Loops, std::string &Error) {
  if (V.isString()) {
    if (V.asString() == "all") {
      Loops = LoopSet::allLabeled();
      return true;
    }
    if (V.asString().empty()) {
      Error = "\"loops\" label must not be empty";
      return false;
    }
    Loops = LoopSet::of({V.asString()});
    return true;
  }
  if (V.isArray()) {
    std::vector<std::string> Labels;
    for (const Value &Item : V.items()) {
      if (!Item.isString() || Item.asString().empty()) {
        Error = "\"loops\" array entries must be non-empty label strings";
        return false;
      }
      Labels.push_back(Item.asString());
    }
    if (Labels.empty()) {
      Error = "\"loops\" array must not be empty";
      return false;
    }
    Loops = LoopSet::of(std::move(Labels));
    return true;
  }
  Error = "\"loops\" must be \"all\", a label string, or an array of labels";
  return false;
}

std::string joinErrors(const std::vector<std::string> &Errors) {
  std::string Out;
  for (const std::string &E : Errors) {
    if (!Out.empty())
      Out += "; ";
    Out += E;
  }
  return Out;
}

} // namespace

int lc::wireVersionOf(const Value &V, std::string &Error) {
  Error.clear();
  if (!V.isObject()) {
    Error = "request must be a JSON object";
    return 0;
  }
  const Value *Ver = V.get("v");
  if (!Ver)
    return 1; // legacy envelope: no version key
  uint64_t N = 0;
  if (!asCount(*Ver, N) || N == 0) {
    Error = "\"v\" must be a positive integer wire version";
    return 0;
  }
  return static_cast<int>(N);
}

bool lc::readLineBounded(std::istream &In, std::string &Line, size_t MaxBytes,
                         bool &TooLong) {
  Line.clear();
  TooLong = false;
  bool Any = false;
  int C;
  while ((C = In.get()) != std::char_traits<char>::eof()) {
    Any = true;
    if (C == '\n')
      return true;
    if (Line.size() >= MaxBytes) {
      // Past the cap: stop accumulating, drain through the newline so the
      // next read starts on a fresh line.
      TooLong = true;
      while ((C = In.get()) != std::char_traits<char>::eof())
        if (C == '\n')
          break;
      return true;
    }
    Line.push_back(static_cast<char>(C));
  }
  return Any;
}

bool lc::parseAnalysisRequest(const Value &V, AnalysisRequest &R,
                              RequestSourceRef &Ref, std::string &Error) {
  if (!V.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }

  R = AnalysisRequest();
  Ref = RequestSourceRef();
  SessionOptionsBuilder B;
  bool HaveLoops = false;
  bool HaveDeadlineMs = false, HaveDeadlinePolls = false;
  uint64_t DeadlineMs = 0, DeadlinePolls = 0;

  std::vector<const std::string *> Seen;
  for (const auto &[Key, Val] : V.members()) {
    if (!checkDuplicate(Seen, Key, "request", Error))
      return false;
    if (Key == "v") {
      uint64_t Ver = 0;
      if (!asCount(Val, Ver) || Ver != uint64_t(kWireVersion)) {
        Error = "\"v\" must be the wire version " +
                std::to_string(kWireVersion);
        return false;
      }
    } else if (Key == "id") {
      if (!Val.isString()) {
        Error = "\"id\" must be a string";
        return false;
      }
      R.Id = Val.asString();
    } else if (Key == "subject" || Key == "file" || Key == "source") {
      if (!Val.isString() || Val.asString().empty()) {
        Error = "\"" + Key + "\" must be a non-empty string";
        return false;
      }
      if (!Ref.Subject.empty() || !Ref.File.empty() || !Ref.Source.empty()) {
        Error = "exactly one of \"subject\", \"file\", \"source\" may name "
                "the program";
        return false;
      }
      if (Key == "subject")
        Ref.Subject = Val.asString();
      else if (Key == "file")
        Ref.File = Val.asString();
      else
        Ref.Source = Val.asString();
    } else if (Key == "loops") {
      if (!parseLoops(Val, R.Loops, Error))
        return false;
      HaveLoops = true;
    } else if (Key == "priority") {
      if (!Val.isNumber() || Val.asNumber() != std::floor(Val.asNumber())) {
        Error = "\"priority\" must be an integer";
        return false;
      }
      R.Priority = static_cast<int32_t>(Val.asInt());
    } else if (Key == "deadline_ms") {
      if (!asCount(Val, DeadlineMs) || DeadlineMs == 0) {
        Error = "\"deadline_ms\" must be a positive integer";
        return false;
      }
      HaveDeadlineMs = true;
    } else if (Key == "deadline_polls") {
      if (!asCount(Val, DeadlinePolls)) {
        Error = "\"deadline_polls\" must be a non-negative integer";
        return false;
      }
      HaveDeadlinePolls = true;
    } else if (Key == "options") {
      if (!parseOptions(Val, B, Error))
        return false;
    } else {
      Error = "unknown request key \"" + Key + "\"";
      return false;
    }
  }

  if (Ref.Subject.empty() && Ref.File.empty() && Ref.Source.empty()) {
    Error = "request must name a program via \"subject\", \"file\", or "
            "\"source\"";
    return false;
  }
  if (!HaveLoops) {
    Error = "request must name its loops (\"all\", a label, or an array)";
    return false;
  }
  if (HaveDeadlineMs && HaveDeadlinePolls) {
    Error = "\"deadline_ms\" and \"deadline_polls\" are mutually exclusive";
    return false;
  }
  // deadline_ms measures from submission (parse), the service-level
  // meaning of a deadline: time spent queued behind higher-priority work
  // counts against it.
  if (HaveDeadlineMs)
    R.Deadline = CancellationToken::afterMillis(
        static_cast<int64_t>(DeadlineMs));
  else if (HaveDeadlinePolls)
    R.Deadline = CancellationToken::afterPolls(DeadlinePolls);

  std::optional<SessionOptions> Opts = B.build();
  if (!Opts) {
    Error = "invalid options: " + joinErrors(B.errors());
    return false;
  }
  R.Options = *Opts;
  return true;
}

bool lc::parseRequestBatch(const Value &V, std::vector<AnalysisRequest> &Rs,
                           std::vector<RequestSourceRef> &Refs,
                           std::string &Error) {
  const std::vector<Value> *Items = nullptr;
  if (V.isArray()) {
    Items = &V.items();
  } else if (V.isObject()) {
    const Value *Reqs = V.get("requests");
    if (!Reqs || !Reqs->isArray()) {
      Error = "batch object must carry a \"requests\" array";
      return false;
    }
    size_t RequestsKeys = 0;
    for (const auto &[Key, Val] : V.members()) {
      (void)Val;
      if (Key != "requests") {
        Error = "unknown batch key \"" + Key + "\"";
        return false;
      }
      ++RequestsKeys;
    }
    if (RequestsKeys > 1) {
      Error = "duplicate batch key \"requests\"";
      return false;
    }
    Items = &Reqs->items();
  } else {
    Error = "batch must be a JSON array of requests (or {\"requests\": [...]})";
    return false;
  }

  Rs.clear();
  Refs.clear();
  for (size_t I = 0; I < Items->size(); ++I) {
    AnalysisRequest R;
    RequestSourceRef Ref;
    std::string E;
    if (!parseAnalysisRequest((*Items)[I], R, Ref, E)) {
      Error = "request " + std::to_string(I) + ": " + E;
      return false;
    }
    Rs.push_back(std::move(R));
    Refs.push_back(std::move(Ref));
  }
  return true;
}

std::string lc::renderOutcomeJson(const AnalysisOutcome &O) {
  // The envelope version leads every outcome line; all later keys keep
  // their relative order, so substring greps over stable key runs
  // ("id" through "substrate_origin") still match.
  std::string J = "{";
  J += "\"v\":" + std::to_string(kWireVersion);
  J += ",\"id\":" + json::quote(O.Id);
  J += ",\"status\":" + json::quote(outcomeStatusName(O.Status));
  J += ",\"substrate_built\":";
  J += O.SubstrateBuilt ? "true" : "false";
  // Finer-grained origin alongside the boolean (kept for grep/tooling
  // compatibility): "built" (cold), "warm" (exact hit), or "patched"
  // (incremental reuse of a cached ancestor across an edit).
  J += ",\"substrate_origin\":" + json::quote(substrateOriginName(O.Origin));

  J += ",\"loops\":[";
  for (size_t I = 0; I < O.Results.size(); ++I) {
    const LeakAnalysisResult &R = O.Results[I];
    if (I)
      J += ",";
    J += "{\"label\":" +
         json::quote(I < O.LoopLabels.size() ? O.LoopLabels[I] : "");
    J += ",\"leaks\":" + std::to_string(R.Reports.size());
    J += ",\"partial\":";
    J += R.Partial ? "true" : "false";
    J += ",\"stop_reason\":" + json::quote(stopReasonName(R.Stopped));
    J += ",\"sites_completed\":" + std::to_string(R.SitesCompleted);
    J += ",\"sites_total\":" + std::to_string(R.SitesTotal);
    if (I < O.RenderedReports.size())
      J += ",\"report\":" + json::quote(O.RenderedReports[I]);
    J += "}";
  }
  J += "]";

  if (!O.LoopsNotRun.empty()) {
    J += ",\"loops_not_run\":[";
    for (size_t I = 0; I < O.LoopsNotRun.size(); ++I) {
      if (I)
        J += ",";
      J += json::quote(O.LoopsNotRun[I]);
    }
    J += "]";
  }
  if (O.Status == OutcomeStatus::LoopNotFound) {
    J += ",\"missing_label\":" + json::quote(O.MissingLabel);
    J += ",\"known_labels\":[";
    for (size_t I = 0; I < O.KnownLabels.size(); ++I) {
      if (I)
        J += ",";
      J += json::quote(O.KnownLabels[I]);
    }
    J += "]";
  }
  if (!O.Diagnostics.empty())
    J += ",\"diagnostics\":" + json::quote(O.Diagnostics);

  // Per-request attribution, appended last so line-prefix greps over the
  // stable keys keep working whether or not the service attributed. The
  // object is schema-versioned ("v") and only present when the serving
  // AnalysisService had Attribution on.
  if (O.Observability.Valid) {
    const RequestObservability &Obs = O.Observability;
    J += ",\"observability\":{\"v\":" + std::to_string(kObservabilityVersion);
    J += ",\"seq\":" + std::to_string(Obs.Seq);
    J += ",\"wall_us\":" + std::to_string(Obs.WallUs);
    J += ",\"queue_us\":" + std::to_string(Obs.QueueUs);
    J += ",\"phase_us\":{\"andersen\":" + std::to_string(Obs.AndersenUs);
    J += ",\"summarize\":" + std::to_string(Obs.SummarizeUs);
    J += ",\"leak_analysis\":" + std::to_string(Obs.LeakAnalysisUs);
    J += "}";
    J += ",\"memo_hits\":" + std::to_string(Obs.MemoHits);
    J += ",\"memo_misses\":" + std::to_string(Obs.MemoMisses);
    J += ",\"evictions\":" + std::to_string(Obs.EvictionsCaused);
    if (Obs.HeapAllocsValid)
      J += ",\"heap_allocs\":" + std::to_string(Obs.HeapAllocs);
    J += "}";
  }
  J += "}";
  return J;
}

bool lc::parseControlLine(const Value &V, std::string &Verb,
                          std::string &Error) {
  Verb.clear();
  Error.clear();
  if (!V.isObject())
    return false;
  const Value *C = V.get("control");
  if (!C)
    return false; // not a control line; try parsing it as a request
  if (!C->isString()) {
    Error = "\"control\" must be a string";
    return true;
  }
  // Same strictness as requests: a control line carries exactly one key.
  size_t Keys = 0;
  for (const auto &[Key, Val] : V.members()) {
    (void)Val;
    if (Key != "control") {
      Error = "unknown control key \"" + Key + "\"";
      return true;
    }
    ++Keys;
  }
  if (Keys > 1) {
    Error = "duplicate control key \"control\"";
    return true;
  }
  const std::string &Want = C->asString();
  if (Want != "stats" && Want != "health") {
    Error = "unknown control verb \"" + Want + "\" (known: stats, health)";
    return true;
  }
  Verb = Want;
  return true;
}
