//===-- SubjectEclipseCp.cpp - Eclipse content-provider model --------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// The second Eclipse scenario of Table 1 ("Eclipse CP"). A viewer refresh
// region: each refresh re-registers label/content/decoration providers
// with the platform-wide registry and never unregisters them (true
// leaks), while per-refresh color/font/layout caches land in slots the
// next refresh overwrites (reported false positives).
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::eclipseCpSource() {
  return R"MJ(
class TreeItemData {
  int id;
}

class LabelProvider {
  int style;
}

class ContentProvider {
  TreeItemData root;
}

class DecorationJob {
  int priority;
}

class ColorCache {
  int[] rgb = new int[3];
}

class FontCache {
  int height;
}

class LayoutState {
  int columns;
}

class ExpandState {
  int[] expandedIds = new int[16];
}

// Platform-wide registry; listener lists only ever grow.
class ProviderRegistry {
  ArrayList labelProviders = new ArrayList();
  ArrayList contentProviders = new ArrayList();
  LinkedList decorationJobs = new LinkedList();
  ColorCache colors;
  FontCache fonts;
  LayoutState layout;
  ExpandState expansion;

  void registerLabel(LabelProvider p) { this.labelProviders.add(p); }
  void registerContent(ContentProvider p) { this.contentProviders.add(p); }
  void scheduleDecoration(DecorationJob j) { this.decorationJobs.addLast(j); }
}

class TreeViewer {
  ProviderRegistry registry;
  TreeViewer(ProviderRegistry r) { this.registry = r; }

  void refresh(int generation) {
    // Re-registered every refresh, never unregistered: the leaks.
    @leak LabelProvider lp = new LabelProvider();
    lp.style = generation;
    this.registry.registerLabel(lp);

    @leak ContentProvider cp = new ContentProvider();
    TreeItemData root = new TreeItemData();
    root.id = generation;
    cp.root = root;
    this.registry.registerContent(cp);

    @leak DecorationJob job = new DecorationJob();
    job.priority = 1;
    this.registry.scheduleDecoration(job);

    // Per-refresh caches: overwritten slots, reported FPs.
    @falsepos ColorCache colors = new ColorCache();
    this.registry.colors = colors;
    @falsepos FontCache fonts = new FontCache();
    fonts.height = 12;
    this.registry.fonts = fonts;
    @falsepos LayoutState layout = new LayoutState();
    layout.columns = 3;
    this.registry.layout = layout;
    @falsepos ExpandState expansion = new ExpandState();
    expansion.expandedIds[0] = generation;
    this.registry.expansion = expansion;
  }
}

class Main {
  static void main() {
    ProviderRegistry reg = new ProviderRegistry();
    TreeViewer viewer = new TreeViewer(reg);
    region "refresh" {
      viewer.refresh(1);
    }
  }
}
)MJ";
}
