//===-- SubjectFindBugs.cpp - FindBugs model --------------------------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the FindBugs case study (paper section 5.2): a driver loop
// iterates over JAR files and parses the classes in each. Nine sites are
// reported: five are false positives -- objects stored in HashMaps
// reachable from the global DescriptorFactory that are *cleared* at the
// end of each iteration (the analysis does not model the destructive
// update) -- and four are real: method-level records added to a long-lived
// IdentityHashMap that nobody ever clears.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::findBugsSource() {
  return R"MJ(
class ClassDescriptor {
  int classId;
}

class ClassInfo {
  ClassDescriptor descriptor;
  int accessFlags;
}

class FieldDescriptor {
  int fieldId;
}

class AnalysisResult {
  int warnings;
}

class ParseBuffer {
  int[] bytes = new int[128];
}

class MethodInfo {
  int methodId;
  int signatureHash;
}

class MethodDescriptor {
  int slot;
}

class MethodGen {
  int maxStack;
}

class NativeStub {
  int kind;
}

// The global factory: per-iteration maps (cleared each JAR) plus the
// never-cleared identity map of method records.
class DescriptorFactory {
  HashMap classMap = new HashMap();
  HashMap fieldMap = new HashMap();
  HashMap resultMap = new HashMap();
  HashMap bufferMap = new HashMap();
  HashMap descriptorMap = new HashMap();
  IdentityHashMap methodMap = new IdentityHashMap();

  void endOfJar() {
    this.classMap.clear();
    this.fieldMap.clear();
    this.resultMap.clear();
    this.bufferMap.clear();
    this.descriptorMap.clear();
    // methodMap is forgotten: the bug.
  }
}

class ClassParser {
  DescriptorFactory factory;
  ClassParser(DescriptorFactory f) { this.factory = f; }

  void parseClass(int classId) {
    // Cleared-per-iteration maps: reported, but false positives (the
    // clear() at end of iteration is a destructive update the analysis
    // does not model).
    @falsepos ClassDescriptor cd = new ClassDescriptor();
    cd.classId = classId;
    this.factory.descriptorMap.put(classId, cd);
    @falsepos ClassInfo ci = new ClassInfo();
    ci.accessFlags = 1;
    this.factory.classMap.put(classId, ci);
    @falsepos FieldDescriptor fd = new FieldDescriptor();
    fd.fieldId = classId * 8;
    this.factory.fieldMap.put(classId, fd);
    @falsepos AnalysisResult ar = new AnalysisResult();
    ar.warnings = 0;
    this.factory.resultMap.put(classId, ar);
    @falsepos ParseBuffer pb = new ParseBuffer();
    this.factory.bufferMap.put(classId, pb);

    // Method records into the identity map: never cleared, never read.
    int m = 0;
    while (m < 4) {
      @leak MethodInfo mi = new MethodInfo();
      mi.methodId = classId * 100 + m;
      mi.signatureHash = m * 31;
      @leak MethodDescriptor md = new MethodDescriptor();
      md.slot = m;
      this.factory.methodMap.put(mi, md);
      @leak MethodGen mg = new MethodGen();
      mg.maxStack = 4;
      this.factory.methodMap.put(mi, mg);
      @leak NativeStub ns = new NativeStub();
      ns.kind = 0;
      this.factory.methodMap.put(mi, ns);
      m = m + 1;
    }
  }
}

class FindBugs2 {
  DescriptorFactory factory;
  ClassParser parser;
  FindBugs2() {
    this.factory = new DescriptorFactory();
    this.parser = new ClassParser(this.factory);
  }

  void execute(int jarId) {
    int cls = 0;
    while (cls < 3) {
      this.parser.parseClass(jarId * 10 + cls);
      cls = cls + 1;
    }
    this.factory.endOfJar();
  }
}

class Main {
  static void main() {
    FindBugs2 engine = new FindBugs2();
    int jar = 0;
    jars: while (jar < 6) {
      engine.execute(jar);
      jar = jar + 1;
    }
  }
}
)MJ";
}
