//===-- SubjectEclipseDiff.cpp - Eclipse compare-plugin model --------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the Eclipse Diff case study (paper section 5.2): the compare
// plugin's runCompare entry point is wrapped in an artificial region (the
// developer cannot see the platform's event loop). Each invocation creates
// a HistoryEntry recorded in the platform's History -- a platform class the
// plugin developer does not own -- and the entries are never cleared: the
// true leak. Three GUI temporaries (progress dialog, shell, status
// message) land in platform slots that are overwritten per invocation and
// are reported as immediately-excludable false positives.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::eclipseDiffSource() {
  return R"MJ(
class Selection {
  int leftId;
  int rightId;
}

class ZipStructure {
  int[] entryHashes = new int[32];
  int n;
}

class CompareEditor {
  ZipStructure left;
  ZipStructure right;
  int dirty;
}

class HistoryEntry {
  CompareEditor editor;
  int timestamp;
}

// Platform class: records the history of opened editors. Entries
// accumulate in the list and are never cleared (Eclipse bug).
class History {
  ArrayList entries = new ArrayList();
  void addEntry(HistoryEntry e) {
    this.entries.add(e);
  }
}

class ProgressDialog {
  int percent;
}

class Shell {
  int width;
  int height;
}

class StatusMessage {
  int severity;
}

// Per-invocation comparison statistics shown in the dialog; discarded
// when the compare finishes.
class DiffStats {
  int changedEntries;
}

class StatusBar {
  StatusMessage current;
}

// The platform singleton the plugin runs inside.
class Workbench {
  History editorHistory = new History();
  StatusBar statusBar = new StatusBar();
  ProgressDialog activeDialog;
  Shell activeShell;
}

class ComparePlugin {
  Workbench workbench;
  ComparePlugin(Workbench wb) { this.workbench = wb; }

  ZipStructure parseStructure(int id) {
    ZipStructure z = new ZipStructure();
    int i = 0;
    while (i < 8) {
      z.entryHashes[i] = id * 31 + i;
      z.n = z.n + 1;
      i = i + 1;
    }
    return z;
  }

  void runCompare(Selection sel) {
    // Temporary GUI state: overwritten slots, reported as FPs.
    @falsepos ProgressDialog dialog = new ProgressDialog();
    this.workbench.activeDialog = dialog;
    @falsepos Shell shell = new Shell();
    this.workbench.activeShell = shell;
    @falsepos StatusMessage msg = new StatusMessage();
    this.workbench.statusBar.current = msg;

    // The comparison itself: structures and the editor showing them.
    ZipStructure left = this.parseStructure(sel.leftId);
    ZipStructure right = this.parseStructure(sel.rightId);
    CompareEditor editor = new CompareEditor();
    editor.left = left;
    editor.right = right;
    DiffStats stats = new DiffStats();
    stats.changedEntries = left.n + right.n;
    dialog.percent = stats.changedEntries;

    // Platform records the opened editor: the leak.
    @leak HistoryEntry entry = new HistoryEntry();
    entry.editor = editor;
    entry.timestamp = sel.leftId;
    this.workbench.editorHistory.addEntry(entry);

    // Dialog is "closed": the reference is dropped from the dialog slot
    // only at the start of the next invocation (overwrite).
    dialog.percent = 100;
  }
}

class Main {
  static void main() {
    Workbench wb = new Workbench();
    ComparePlugin plugin = new ComparePlugin(wb);
    Selection sel = new Selection();
    sel.leftId = 1;
    sel.rightId = 2;
    region "compare" {
      plugin.runCompare(sel);
    }
  }
}
)MJ";
}
