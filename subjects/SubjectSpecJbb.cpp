//===-- SubjectSpecJbb.cpp - SPECjbb2000 model -----------------------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the SPECjbb2000 case study (paper sections 2 and 5.2): a
// transaction manager loop retrieves a command per iteration and runs the
// corresponding transaction. The true leak: Order objects created while
// processing new-order commands are filed into per-district longBTreeNode
// containers that hang off long-lived District objects and are never read
// again. The paper reports the longBTreeNode allocation site; the Orders
// inside are pivot-suppressed. Four more sites escape into manager/
// warehouse slots that are overwritten every iteration -- reported, but
// immediately excludable (false positives).
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::specJbbSource() {
  return R"MJ(
class Order {
  int orderId;
  int custId;
  int quantity;
  Order(int id, int cust) {
    this.orderId = id;
    this.custId = cust;
    this.quantity = 1;
  }
}

class History {
  int amount;
  History(int amount) { this.amount = amount; }
}

// A node of the order B-tree; holds one filed order.
class LongBTreeNode {
  Object key;
  int height;
}

// Per-district container of processed orders. Nodes accumulate and are
// never traversed again by the transaction loop.
class LongBTree {
  LongBTreeNode[] nodes = new LongBTreeNode[4096];
  int n;
  void add(Object key) {
    @leak LongBTreeNode node = new LongBTreeNode();
    node.key = key;
    node.height = 0;
    this.nodes[this.n] = node;
    this.n = this.n + 1;
  }
}

class District {
  LongBTree orderTree = new LongBTree();
  int nextOrderId;
  int newOrderId() {
    this.nextOrderId = this.nextOrderId + 1;
    return this.nextOrderId;
  }
}

class Warehouse {
  History[] historyTable = new History[8];
  int cursor;
  // Bounded history: the oldest entry is overwritten when a new one comes
  // in. The analysis cannot see the bound; reported but not a real leak.
  void addHistory(History h) {
    this.historyTable[this.cursor] = h;
    this.cursor = this.cursor + 1;
    if (this.cursor == 8) { this.cursor = 0; }
  }
}

class Company {
  District[] districts = new District[4];
  Warehouse[] warehouses = new Warehouse[2];
  Company() {
    int i = 0;
    while (i < 4) {
      this.districts[i] = new District();
      i = i + 1;
    }
    int j = 0;
    while (j < 2) {
      this.warehouses[j] = new Warehouse();
      j = j + 1;
    }
  }
  District districtOf(int cust) {
    return this.districts[cust - (cust / 4) * 4];
  }
  Warehouse warehouseOf(int cust) {
    return this.warehouses[cust - (cust / 2) * 2];
  }
}

// One parsed input command; saved in the manager's lastCommand slot which
// is overwritten every iteration (reported, false positive).
class Command {
  int kind;
  Command(int kind) { this.kind = kind; }
}

// Per-iteration status record, also kept in an overwritten slot.
class StatusRecord {
  int code;
}

// Per-iteration timing record, same overwritten-slot pattern.
class TimerRecord {
  int startMillis;
}

// Per-transaction pricing scratch; dies when the transaction completes.
class PriceCalc {
  int subtotal;
  int tax;
}

class OrderFactory {
  // Creates an order and files it in the district's order tree. This is
  // the store that keeps orders alive: the tree is reachable from the
  // long-lived District.
  Order makeAndFile(Company co, int cust) {
    District d = co.districtOf(cust);
    Order o = new Order(d.newOrderId(), cust);
    LongBTree tree = d.orderTree;
    tree.add(o);
    return o;
  }
}

class NewOrderTransaction {
  Company company;
  OrderFactory factory;
  NewOrderTransaction(Company co, OrderFactory f) {
    this.company = co;
    this.factory = f;
  }
  void process(int cust) {
    Order o = this.factory.makeAndFile(this.company, cust);
    PriceCalc calc = new PriceCalc();
    calc.subtotal = o.quantity * 3;
    calc.tax = calc.subtotal / 10;
    int total = calc.subtotal + calc.tax;
  }
}

class MultipleOrdersTransaction {
  Company company;
  OrderFactory factory;
  MultipleOrdersTransaction(Company co, OrderFactory f) {
    this.company = co;
    this.factory = f;
  }
  void process(int cust) {
    int j = 0;
    while (j < 3) {
      Order o = this.factory.makeAndFile(this.company, cust + j);
      j = j + 1;
    }
  }
}

class PaymentTransaction {
  Company company;
  PaymentTransaction(Company co) { this.company = co; }
  void process(int cust) {
    Warehouse w = this.company.warehouseOf(cust);
    @falsepos History h = new History(cust * 10);
    w.addHistory(h);
  }
}

class TransactionManager {
  Company company;
  OrderFactory factory;
  Command lastCommand;
  StatusRecord status;
  TimerRecord timer;
  int clock;

  TransactionManager(Company co) {
    this.company = co;
    this.factory = new OrderFactory();
  }

  int nextCommand() {
    this.clock = this.clock + 1;
    return this.clock - (this.clock / 3) * 3;
  }

  void go(int iterations) {
    int i = 0;
    txloop: while (i < iterations) {
      int kind = this.nextCommand();
      @falsepos Command cmd = new Command(kind);
      this.lastCommand = cmd;          // overwritten next iteration
      @falsepos StatusRecord st = new StatusRecord();
      st.code = kind;
      this.status = st;                // overwritten next iteration
      @falsepos TimerRecord tr = new TimerRecord();
      tr.startMillis = i;
      this.timer = tr;                 // overwritten next iteration

      if (kind == 0) {
        NewOrderTransaction t = new NewOrderTransaction(this.company, this.factory);
        t.process(i);
      } else {
        if (kind == 1) {
          MultipleOrdersTransaction t2 = new MultipleOrdersTransaction(this.company, this.factory);
          t2.process(i);
        } else {
          PaymentTransaction t3 = new PaymentTransaction(this.company);
          t3.process(i);
        }
      }
      i = i + 1;
    }
  }
}

class Main {
  static void main() {
    Company co = new Company();
    TransactionManager mgr = new TransactionManager(co);
    mgr.go(24);
  }
}
)MJ";
}
