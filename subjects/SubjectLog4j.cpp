//===-- SubjectLog4j.cpp - log4j model --------------------------------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the log4j subject of Table 1 (LS = 4, FP = 0): a tight logging
// loop. Each log call materializes a LoggingEvent with its throwable
// information, rendered message, and location info; a misconfigured
// buffering appender keeps everything in an unbounded in-memory list that
// is never flushed. All four reported sites are real leaks.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::log4jSource() {
  return R"MJ(
class ThrowableInfo {
  int depth;
}

class LocationInfo {
  int line;
}

class RenderedMessage {
  String text;
  RenderedMessage(String text) { this.text = text; }
}

class LoggingEvent {
  int level;
  RenderedMessage message;
  ThrowableInfo throwable;
  LocationInfo location;
}

// Per-call layout scratch used while formatting; never leaves log().
class FormatBuffer {
  int width;
  int padded;
}

// A buffering appender whose flush never runs: the event buffer and its
// side caches (rendered messages, throwable records, location index) all
// grow without bound.
class BufferAppender {
  ArrayList buffer = new ArrayList();
  ArrayList renderedCache = new ArrayList();
  LinkedList throwableTable = new LinkedList();
  ArrayList locationIndex = new ArrayList();
  int threshold;
  void doAppend(LoggingEvent ev) {
    if (ev.level >= this.threshold) {
      this.buffer.add(ev);
    }
  }
  void cacheRendering(RenderedMessage m) { this.renderedCache.add(m); }
  void recordThrowable(ThrowableInfo t) { this.throwableTable.addLast(t); }
  void indexLocation(LocationInfo l) { this.locationIndex.add(l); }
}

class Logger {
  BufferAppender appender;
  int effectiveLevel;
  Logger(BufferAppender a) {
    this.appender = a;
    this.effectiveLevel = 1;
  }

  void log(int level, String text) {
    if (level < this.effectiveLevel) { return; }
    FormatBuffer fb = new FormatBuffer();
    fb.width = level * 8;
    fb.padded = fb.width + 1;
    @leak LoggingEvent ev = new LoggingEvent();
    ev.level = fb.padded - fb.width + level - 1;
    @leak RenderedMessage msg = new RenderedMessage(text);
    this.appender.cacheRendering(msg);
    @leak ThrowableInfo ti = new ThrowableInfo();
    ti.depth = level;
    this.appender.recordThrowable(ti);
    @leak LocationInfo loc = new LocationInfo();
    loc.line = level * 10;
    this.appender.indexLocation(loc);
    this.appender.doAppend(ev);
  }
}

class Main {
  static void main() {
    BufferAppender appender = new BufferAppender();
    Logger logger = new Logger(appender);
    int i = 0;
    logging: while (i < 50) {
      logger.log(2, "request handled");
      i = i + 1;
    }
  }
}
)MJ";
}
