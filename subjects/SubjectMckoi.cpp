//===-- SubjectMckoi.cpp - Mckoi database model -----------------------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the Mckoi case study (paper section 5.2): an embedded client
// repeatedly opens and closes a database connection. The true leak needs
// thread modeling: every connection creates a DatabaseSystem that a
// non-terminating DatabaseDispatcher thread keeps alive. With started
// threads treated as outside objects the analysis finds it -- along with a
// batch of false positives for objects that escape only into *terminating*
// worker threads (no thread-termination analysis) and the singleton
// LocalBootstrap reported on the paper's first run.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::mckoiSource() {
  return R"MJ(
class DatabaseSystem {
  int openTables;
}

class DispatchEvent {
  int kind;
}

// Never terminates: sits in an (abstract) event loop. Objects attached to
// it live forever -- the root cause of the Mckoi leak.
class DatabaseDispatcher extends Thread {
  DatabaseSystem attached;
  DispatchEvent pending;
  void run() {
    int spin = 0;
    while (spin < 3) { spin = spin + 1; }
  }
}

class RequestBuffer {
  int[] bytes = new int[32];
}

class SessionState {
  int transactionId;
}

class CleanupTask {
  int deadline;
}

// Terminates right after the handshake; everything it holds is collectable
// once it finishes, but the analysis cannot know that. The handshake state
// is written for a later phase that never runs in this configuration, so
// nothing reads the fields back.
class ConnectionWorker extends Thread {
  RequestBuffer request;
  SessionState session;
  CleanupTask cleanup;
  int spins;
  void run() {
    int s = 0;
    while (s < 2) { s = s + 1; }
    this.spins = s;
  }
}

class JdbcDriver {
  LocalBootstrap bootstrap;
  boolean booted;
}

class LocalBootstrap {
  int bootCount;
}

class Connection {
  DatabaseSystem system;
  Connection(DatabaseSystem s) { this.system = s; }
  void close() { this.system = null; }
}

class DatabaseClient {
  JdbcDriver driver;
  DatabaseClient() {
    this.driver = new JdbcDriver();
  }

  Connection connect(int attempt) {
    // Singleton bootstrap: created once (flag-guarded), saved in the
    // driver, and never read back. Reported on the paper's first run; a
    // false positive because only one instance can ever exist.
    if (!this.driver.booted) {
      this.driver.booted = true;
      @falsepos LocalBootstrap lb = new LocalBootstrap();
      lb.bootCount = attempt;
      this.driver.bootstrap = lb;
    }

    // The real leak: each connection gets its own dispatcher thread that
    // never terminates and keeps the DatabaseSystem alive after close().
    // No outside object references the dispatcher -- only thread modeling
    // (started threads are outside objects) exposes the escape.
    @leak DatabaseSystem sys = new DatabaseSystem();
    sys.openTables = 0;
    DatabaseDispatcher d = new DatabaseDispatcher();
    d.attached = sys;
    d.start();

    // A short-lived worker services the handshake; the objects handed to
    // it escape only into the (terminating) thread: false positives.
    ConnectionWorker worker = new ConnectionWorker();
    @falsepos RequestBuffer req = new RequestBuffer();
    req.bytes[0] = attempt;
    worker.request = req;
    @falsepos SessionState ss = new SessionState();
    ss.transactionId = attempt;
    worker.session = ss;
    @falsepos CleanupTask ct = new CleanupTask();
    ct.deadline = attempt + 100;
    worker.cleanup = ct;
    worker.start();

    return new Connection(sys);
  }
}

class Main {
  static void main() {
    DatabaseClient client = new DatabaseClient();
    int i = 0;
    connections: while (i < 8) {
      Connection c = client.connect(i);
      c.close();
      i = i + 1;
    }
  }
}
)MJ";
}
