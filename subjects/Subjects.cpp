//===-- Subjects.cpp - subject registry -------------------------------------===//

#include "subjects/Subjects.h"

#include <cassert>

using namespace lc;
using namespace lc::subjects;

namespace {

Subject make(const char *Name, const char *Label, const char *Body,
             unsigned PaperLs, unsigned PaperFp, bool ModelThreads = false) {
  Subject S;
  S.Name = Name;
  S.LoopLabel = Label;
  S.Source = std::string(miniJavaUtil()) + "\n" + Body;
  S.PaperLeakSites = PaperLs;
  S.PaperFalsePos = PaperFp;
  S.Options.ModelThreads = ModelThreads;
  return S;
}

std::vector<Subject> build() {
  std::vector<Subject> Out;
  // Paper-reported site counts follow the section 5.2 narratives (the
  // scanned Table 1 digits are unreliable; see EXPERIMENTS.md).
  Out.push_back(make("SPECjbb2000", "txloop", specJbbSource(),
                     /*PaperLs=*/5, /*PaperFp=*/4));
  Out.push_back(make("EclipseDiff", "compare", eclipseDiffSource(),
                     /*PaperLs=*/4, /*PaperFp=*/3));
  Out.push_back(make("EclipseCP", "refresh", eclipseCpSource(),
                     /*PaperLs=*/7, /*PaperFp=*/4));
  Out.push_back(make("MySQL-CJ", "queries", mySqlCjSource(),
                     /*PaperLs=*/5, /*PaperFp=*/2));
  Out.push_back(make("log4j", "logging", log4jSource(),
                     /*PaperLs=*/4, /*PaperFp=*/0));
  Out.push_back(make("FindBugs", "jars", findBugsSource(),
                     /*PaperLs=*/9, /*PaperFp=*/5));
  Out.push_back(make("Derby", "sql", derbySource(),
                     /*PaperLs=*/8, /*PaperFp=*/4));
  Out.push_back(make("Mckoi", "connections", mckoiSource(),
                     /*PaperLs=*/5, /*PaperFp=*/4, /*ModelThreads=*/true));
  return Out;
}

} // namespace

const std::vector<Subject> &lc::subjects::all() {
  static const std::vector<Subject> Subjects = build();
  return Subjects;
}

const Subject &lc::subjects::byName(const std::string &Name) {
  for (const Subject &S : all())
    if (S.Name == Name)
      return S;
  assert(false && "unknown subject");
  return all().front();
}
