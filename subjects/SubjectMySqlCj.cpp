//===-- SubjectMySqlCj.cpp - MySQL Connector/J model ------------------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the MySQL Connector/J subject of Table 1: a client loop that
// creates a statement and runs a query per iteration. True leaks:
// statements registered in the connection's open-statements list and
// never closed; per-query result sets registered with their statement;
// profiler events appended to the connection's event log. False
// positives: network buffers and packet headers kept in per-connection
// slots that each query overwrites, and a metadata cache that *is* read
// back on later queries (retrieved through a cast).
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::mySqlCjSource() {
  return R"MJ(
class RowData {
  int[] cells = new int[8];
}

class ResultSetImpl {
  RowData rows;
  int cursor;
}

class StatementImpl {
  int id;
  StatementImpl(int id) { this.id = id; }
}

class ProfilerEvent {
  int durationMillis;
  int kind;
}

class NetBuffer {
  int[] bytes = new int[64];
}

class PacketHeader {
  int length;
  int sequence;
}

class CachedMetaData {
  int columnCount;
}

class ConnectionImpl {
  ArrayList openStatements = new ArrayList();
  ArrayList openResultSets = new ArrayList();
  LinkedList profilerEvents = new LinkedList();
  HashMap metadataCache = new HashMap();
  NetBuffer sharedSendBuffer;
  PacketHeader lastHeader;
  int nextStatementId;

  StatementImpl createStatement() {
    this.nextStatementId = this.nextStatementId + 1;
    @leak StatementImpl st = new StatementImpl(this.nextStatementId);
    this.openStatements.add(st);     // never removed: close() is missing
    return st;
  }

  CachedMetaData metaDataFor(int table) {
    Object hit = this.metadataCache.get(table);
    if (hit != null) {
      CachedMetaData cached = (CachedMetaData) hit;
      return cached;
    }
    CachedMetaData fresh = new CachedMetaData();
    fresh.columnCount = table + 2;
    this.metadataCache.put(table, fresh);
    return fresh;
  }

  void logProfilerEvent(ProfilerEvent ev) {
    this.profilerEvents.addLast(ev);  // event log is never drained
  }
}

class QueryExecutor {
  ConnectionImpl conn;
  QueryExecutor(ConnectionImpl c) { this.conn = c; }

  ResultSetImpl execute(StatementImpl st, int table) {
    // Per-query I/O state kept in connection slots; the next query
    // overwrites them (reported false positives).
    @falsepos NetBuffer buf = new NetBuffer();
    this.conn.sharedSendBuffer = buf;
    @falsepos PacketHeader hdr = new PacketHeader();
    hdr.length = 128;
    hdr.sequence = table;
    this.conn.lastHeader = hdr;

    CachedMetaData md = this.conn.metaDataFor(table);

    @leak ResultSetImpl rs = new ResultSetImpl();
    RowData rows = new RowData();
    rows.cells[0] = md.columnCount;
    rs.rows = rows;
    this.conn.openResultSets.add(rs); // never closed either
    int stId = st.id;

    @leak ProfilerEvent ev = new ProfilerEvent();
    ev.durationMillis = table * 3;
    ev.kind = 1;
    this.conn.logProfilerEvent(ev);
    return rs;
  }
}

class Client {
  static void main() {
    ConnectionImpl conn = new ConnectionImpl();
    QueryExecutor exec = new QueryExecutor(conn);
    int i = 0;
    queries: while (i < 16) {
      StatementImpl st = conn.createStatement();
      ResultSetImpl rs = exec.execute(st, i - (i / 4) * 4);
      int c = rs.cursor;
      i = i + 1;
    }
  }
}
)MJ";
}
