//===-- Scoring.h - ground-truth scoring of leak reports -------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scores a leak-analysis result against the `@leak` / `@falsepos`
/// annotations carried by the subject programs, replacing the paper's
/// manual verification of every warning. Reported sites annotated @leak
/// are true positives; @falsepos are the expected false positives the
/// paper documents; unannotated reported sites are unexpected false
/// positives (they still count toward FP/FPR, and the tests assert there
/// are none). Unreported @leak sites are misses (the tests assert zero,
/// matching "LeakChecker has not missed any known leaks").
///
//===----------------------------------------------------------------------===//

#ifndef LC_SUBJECTS_SCORING_H
#define LC_SUBJECTS_SCORING_H

#include "leak/LeakAnalysis.h"

#include <string>
#include <vector>

namespace lc::subjects {

/// Outcome of scoring one subject.
struct Score {
  unsigned Reported = 0;     ///< distinct reported allocation sites (LS)
  unsigned TruePositives = 0;
  unsigned ExpectedFp = 0;   ///< reported @falsepos sites
  unsigned UnexpectedFp = 0; ///< reported unannotated sites
  std::vector<AllocSiteId> Missed; ///< @leak sites not reported

  unsigned falsePositives() const { return ExpectedFp + UnexpectedFp; }
  double fpr() const {
    return Reported == 0 ? 0.0
                         : static_cast<double>(falsePositives()) / Reported;
  }
};

/// Scores \p R against the annotations in \p P.
Score score(const Program &P, const LeakAnalysisResult &R);

/// Pretty one-line rendering ("LS=5 TP=1 FP=4 FPR=80.0% miss=0").
std::string renderScore(const Score &S);

} // namespace lc::subjects

#endif // LC_SUBJECTS_SCORING_H
