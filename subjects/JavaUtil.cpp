//===-- JavaUtil.cpp - MJ model of the java.util containers ----------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// A hand-written MJ model of the parts of java.util the subject programs
// use. All classes are `library` classes, so the stronger flows-in rule of
// paper section 4 applies to their internal heap reads: e.g. HashMap.put
// probes its backing array, and that probe must NOT count as a flows-in
// for objects stored in the map.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::miniJavaUtil() {
  return R"MJ(
// --- Minimal java.util model (library code) --------------------------------

library class MapEntry {
  int key;
  Object value;
  MapEntry next;
}

library class HashMap {
  MapEntry[] table = new MapEntry[16];
  int size;

  void put(int key, Object value) {
    int idx = key - (key / 16) * 16;
    if (idx < 0) { idx = 0 - idx; }
    // Probe the chain for an existing key: internal reads that must not
    // count as retrievals (paper section 4, "Flow into Library Methods").
    MapEntry e = this.table[idx];
    while (e != null) {
      if (e.key == key) {
        e.value = value;
        return;
      }
      e = e.next;
    }
    MapEntry fresh = new MapEntry();
    fresh.key = key;
    fresh.value = value;
    fresh.next = this.table[idx];
    this.table[idx] = fresh;
    this.size = this.size + 1;
  }

  Object get(int key) {
    int idx = key - (key / 16) * 16;
    if (idx < 0) { idx = 0 - idx; }
    MapEntry e = this.table[idx];
    while (e != null) {
      if (e.key == key) { return e.value; }
      e = e.next;
    }
    return null;
  }

  boolean containsKey(int key) {
    MapEntry e = this.table[key - (key / 16) * 16];
    while (e != null) {
      if (e.key == key) { return true; }
      e = e.next;
    }
    return false;
  }

  void remove(int key) {
    int idx = key - (key / 16) * 16;
    MapEntry e = this.table[idx];
    MapEntry prev = null;
    while (e != null) {
      if (e.key == key) {
        if (prev == null) { this.table[idx] = e.next; }
        else { prev.next = e.next; }
        this.size = this.size - 1;
        return;
      }
      prev = e;
      e = e.next;
    }
  }

  void clear() {
    int i = 0;
    while (i < this.table.length) {
      this.table[i] = null;
      i = i + 1;
    }
    this.size = 0;
  }

  int size() { return this.size; }
}

library class IdentityHashMap {
  Object[] keys = new Object[1024];
  Object[] values = new Object[1024];
  int size;

  void put(Object key, Object value) {
    int i = 0;
    while (i < this.size) {
      if (this.keys[i] == key) {
        this.values[i] = value;
        return;
      }
      i = i + 1;
    }
    this.keys[this.size] = key;
    this.values[this.size] = value;
    this.size = this.size + 1;
  }

  Object get(Object key) {
    int i = 0;
    while (i < this.size) {
      if (this.keys[i] == key) { return this.values[i]; }
      i = i + 1;
    }
    return null;
  }
}

library class ArrayList {
  Object[] data = new Object[8];
  int size;

  void add(Object v) {
    if (this.size == this.data.length) { this.grow(); }
    this.data[this.size] = v;
    this.size = this.size + 1;
  }

  void grow() {
    Object[] bigger = new Object[this.data.length * 2];
    int i = 0;
    while (i < this.size) {
      bigger[i] = this.data[i];
      i = i + 1;
    }
    this.data = bigger;
  }

  Object get(int i) { return this.data[i]; }
  int size() { return this.size; }
  void clear() {
    int i = 0;
    while (i < this.size) {
      this.data[i] = null;
      i = i + 1;
    }
    this.size = 0;
  }
}

library class ListNode {
  Object value;
  ListNode next;
  ListNode prev;
}

library class LinkedList {
  ListNode head;
  ListNode tail;
  int size;

  void addLast(Object v) {
    ListNode n = new ListNode();
    n.value = v;
    n.prev = this.tail;
    if (this.tail != null) { this.tail.next = n; }
    else { this.head = n; }
    this.tail = n;
    this.size = this.size + 1;
  }

  Object removeFirst() {
    if (this.head == null) { return null; }
    ListNode n = this.head;
    this.head = n.next;
    if (this.head == null) { this.tail = null; }
    else { this.head.prev = null; }
    this.size = this.size - 1;
    return n.value;
  }

  Object getFirst() {
    if (this.head == null) { return null; }
    return this.head.value;
  }

  int size() { return this.size; }
}

library class Stack {
  Object[] data = new Object[16];
  int size;

  void push(Object v) {
    this.data[this.size] = v;
    this.size = this.size + 1;
  }

  Object pop() {
    if (this.size == 0) { return null; }
    this.size = this.size - 1;
    Object v = this.data[this.size];
    this.data[this.size] = null;
    return v;
  }

  Object peek() {
    if (this.size == 0) { return null; }
    return this.data[this.size - 1];
  }

  boolean isEmpty() { return this.size == 0; }
}

library class Hashtable {
  MapEntry[] table = new MapEntry[16];
  int size;

  void put(int key, Object value) {
    MapEntry fresh = new MapEntry();
    fresh.key = key;
    fresh.value = value;
    int idx = key - (key / 16) * 16;
    if (idx < 0) { idx = 0 - idx; }
    fresh.next = this.table[idx];
    this.table[idx] = fresh;
    this.size = this.size + 1;
  }

  Object get(int key) {
    int idx = key - (key / 16) * 16;
    if (idx < 0) { idx = 0 - idx; }
    MapEntry e = this.table[idx];
    while (e != null) {
      if (e.key == key) { return e.value; }
      e = e.next;
    }
    return null;
  }

  int size() { return this.size; }
}
)MJ";
}
