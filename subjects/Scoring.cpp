//===-- Scoring.cpp ----------------------------------------------------------===//

#include "subjects/Scoring.h"

#include <set>
#include <sstream>

using namespace lc;
using namespace lc::subjects;

Score lc::subjects::score(const Program &P, const LeakAnalysisResult &R) {
  Score S;
  std::set<AllocSiteId> ReportedSites;
  for (const LeakReport &Rep : R.Reports)
    ReportedSites.insert(Rep.Site);
  S.Reported = static_cast<unsigned>(ReportedSites.size());

  for (AllocSiteId Site : ReportedSites) {
    switch (P.AllocSites[Site].Annot) {
    case SiteAnnotation::Leak:
      ++S.TruePositives;
      break;
    case SiteAnnotation::FalsePos:
      ++S.ExpectedFp;
      break;
    case SiteAnnotation::None:
      ++S.UnexpectedFp;
      break;
    }
  }

  for (AllocSiteId Site = 0; Site < P.AllocSites.size(); ++Site)
    if (P.AllocSites[Site].Annot == SiteAnnotation::Leak &&
        !ReportedSites.count(Site))
      S.Missed.push_back(Site);
  return S;
}

std::string lc::subjects::renderScore(const Score &S) {
  std::ostringstream OS;
  OS << "LS=" << S.Reported << " TP=" << S.TruePositives
     << " FP=" << S.falsePositives();
  if (S.UnexpectedFp)
    OS << " (unexpected=" << S.UnexpectedFp << ")";
  OS.precision(1);
  OS << " FPR=" << std::fixed << S.fpr() * 100 << "%"
     << " miss=" << S.Missed.size();
  return OS.str();
}
