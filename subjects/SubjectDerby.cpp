//===-- SubjectDerby.cpp - Apache Derby model --------------------------------===//
//
// Part of the LeakChecker reproduction, MIT license.
//
// Models the Derby case study (paper section 5.2): a client/server loop
// executes one SQL query per iteration without calling close() on the
// statement or result set. Four reported sites are real: result-set
// machinery saved in the SectionManager's hashtable and never retrieved.
// Four more are false positives: section bookkeeping objects pushed onto
// a stack behind singleton guards, so only one instance can ever escape.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

const char *lc::subjects::derbySource() {
  return R"MJ(
class ResultSetImpl {
  int openCursors;
}

class CursorState {
  int position;
}

class RowBuffer {
  int[] cells = new int[16];
}

class QueryPlan {
  int cost;
}

class Section {
  int sectionNumber;
}

class SectionKey {
  int hash;
}

class StackFrame {
  int depth;
}

class PoolMarker {
  int poolId;
}

// Server-side bookkeeping of sections and open result sets.
class SectionManager {
  Hashtable openResultSets = new Hashtable();
  Hashtable cursorTable = new Hashtable();
  Hashtable bufferTable = new Hashtable();
  Hashtable planCache = new Hashtable();
  Stack freeSections = new Stack();
  Section singleSection;
  SectionKey singleKey;
  StackFrame singleFrame;
  PoolMarker singleMarker;

  void recordOpen(int id, ResultSetImpl rs, CursorState cs, RowBuffer rb,
                  QueryPlan qp) {
    this.openResultSets.put(id, rs);
    this.cursorTable.put(id, cs);
    this.bufferTable.put(id, rb);
    this.planCache.put(id, qp);
  }

  // Singleton-guarded setup: at most one instance of each object can ever
  // be created and pushed, but the analysis cannot prove that.
  void ensureSectionPool(int id) {
    if (this.singleSection == null) {
      @falsepos Section s = new Section();
      s.sectionNumber = id;
      this.singleSection = s;
      this.freeSections.push(s);
    }
    if (this.singleKey == null) {
      @falsepos SectionKey k = new SectionKey();
      k.hash = id * 31;
      this.singleKey = k;
      this.freeSections.push(k);
    }
    if (this.singleFrame == null) {
      @falsepos StackFrame f = new StackFrame();
      f.depth = 1;
      this.singleFrame = f;
      this.freeSections.push(f);
    }
    if (this.singleMarker == null) {
      @falsepos PoolMarker m = new PoolMarker();
      m.poolId = id;
      this.singleMarker = m;
      this.freeSections.push(m);
    }
  }
}

class QueryRunner {
  SectionManager sections;
  QueryRunner(SectionManager sm) { this.sections = sm; }

  void runQuery(int id) {
    this.sections.ensureSectionPool(id);
    // The statement/result set are never closed; everything recorded for
    // them stays in the manager's hashtables forever.
    @leak ResultSetImpl rs = new ResultSetImpl();
    rs.openCursors = 1;
    @leak CursorState cs = new CursorState();
    cs.position = 0;
    @leak RowBuffer rb = new RowBuffer();
    rb.cells[0] = id;
    @leak QueryPlan qp = new QueryPlan();
    qp.cost = id * 7;
    this.sections.recordOpen(id, rs, cs, rb, qp);
  }
}

class Main {
  static void main() {
    SectionManager sm = new SectionManager();
    QueryRunner runner = new QueryRunner(sm);
    int i = 0;
    sql: while (i < 12) {
      runner.runQuery(i);
      i = i + 1;
    }
  }
}
)MJ";
}
