//===-- Subjects.h - The eight synthetic subject programs ------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MJ models of the eight leaky subjects of the paper's evaluation
/// (Table 1 + section 5.2 case studies). Each model reproduces the leak
/// structure the paper describes (true leak roots, plus the documented
/// false-positive sources), carries `@leak` / `@falsepos` ground-truth
/// annotations, and names the loop/region the paper checked. The
/// substitution rationale is in DESIGN.md section 2.
///
//===----------------------------------------------------------------------===//

#ifndef LC_SUBJECTS_SUBJECTS_H
#define LC_SUBJECTS_SUBJECTS_H

#include "leak/LeakAnalysis.h"

#include <string>
#include <vector>

namespace lc::subjects {

/// One benchmark subject.
struct Subject {
  std::string Name;      ///< Table 1 row name
  std::string LoopLabel; ///< the checked loop/region
  std::string Source;    ///< full MJ source (java.util prelude included)
  LeakOptions Options;   ///< per-subject options (Mckoi: ModelThreads)
  /// Paper-reported values for EXPERIMENTS.md comparison.
  unsigned PaperLeakSites = 0; ///< reported leaking allocation sites
  unsigned PaperFalsePos = 0;  ///< of which false positives
};

/// The shared `java.util` library prelude (MJ source).
const char *miniJavaUtil();

// Per-subject MJ sources (without the prelude).
const char *specJbbSource();
const char *eclipseDiffSource();
const char *eclipseCpSource();
const char *mySqlCjSource();
const char *log4jSource();
const char *findBugsSource();
const char *derbySource();
const char *mckoiSource();

/// All eight subjects, in Table 1 order.
const std::vector<Subject> &all();

/// Finds a subject by name; aborts if absent.
const Subject &byName(const std::string &Name);

} // namespace lc::subjects

#endif // LC_SUBJECTS_SUBJECTS_H
