#!/usr/bin/env python3
"""Validate the tool's machine-readable outputs against the checked-in
schemas, with no third-party dependencies (CI runners only have the
standard library, so this implements the small JSON Schema subset the
schemas actually use rather than importing `jsonschema`).

Usage: validate_report.py REPORT.json [--schema bench/report_schema.json]
       validate_report.py --trace TRACE.json [--schema bench/trace_schema.json]
       validate_report.py --outcomes TRANSCRIPT.jsonl \
                          [--schema bench/outcome_schema.json]
       validate_report.py --events EVENTS.jsonl \
                          [--schema bench/event_schema.json]
       validate_report.py --diff-stable A.json B.json \
                          [--ignore-stable key,prefix-,...]

--diff-stable compares the deterministic portion of two run reports: the
input block, every loop's reports (witnesses included), and the stable
metrics section must be equal. --ignore-stable names stable counters the
caller expects to differ between the two configurations (an entry ending
in "-" matches as a prefix); CI uses it to ablate the method-summary pass
while still insisting the analysis *answers* are unchanged.

--outcomes validates a --serve / --batch transcript: one AnalysisOutcome
JSON document per line, each checked against outcome_schema.json plus the
cross-field outcome invariants (a loop-not-found outcome names the missing
label, partial loops carry a stop reason, site counters are consistent).
Snapshot lines answering {"control":"stats"|"health"} verbs (they carry a
"type" key, which no outcome has) are recognized and counted, not forced
through the outcome schema.

--events validates a --event-log stream: one typed service event per line,
each checked against event_schema.json, plus the cross-line invariants the
schema cannot express: seq strictly increasing from 1, ts_us
non-decreasing, per-type payload keys present, and every
request-completed/request-degraded event paired with a preceding
request-received for the same req.

Supported keywords: type (string or list; "integer" excludes bools),
const, enum, required, properties, additionalProperties (false or a
schema), items, minItems, maxItems, minimum. Anything else in a schema is
a hard error -- better to crash in CI than to silently not validate.

Beyond the schema, the report check asserts cross-field invariants the
schema language cannot express: every witness path ends at the blamed
(field, outside) pair of its report, and every timing histogram's bucket
counts sum to its sample count.
"""

import json
import os
import sys

HANDLED = {
    "type", "const", "enum", "required", "properties",
    "additionalProperties", "items", "minItems", "maxItems", "minimum",
    "$comment",
}


def fail(path, msg):
    print(f"validate_report: FAIL at {path or '$'}: {msg}", file=sys.stderr)
    sys.exit(1)


def type_ok(value, name):
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    if name == "string":
        return isinstance(value, str)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "null":
        return value is None
    raise ValueError(f"unknown type name {name!r} in schema")


def validate(value, schema, path=""):
    unknown = set(schema) - HANDLED
    if unknown:
        fail(path, f"schema uses unsupported keywords {sorted(unknown)}")

    if "type" in schema:
        names = schema["type"]
        names = names if isinstance(names, list) else [names]
        if not any(type_ok(value, n) for n in names):
            fail(path, f"expected type {names}, got {type(value).__name__}")
    if "const" in schema and value != schema["const"]:
        fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}")
            elif extra is False:
                fail(path, f"unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            fail(path, f"{len(value)} items < minItems {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            fail(path, f"{len(value)} items > maxItems {schema['maxItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{path}[{i}]")


def check_report_invariants(doc):
    for li, loop in enumerate(doc["loops"]):
        for ri, rep in enumerate(loop["reports"]):
            where = f"$.loops[{li}].reports[{ri}]"
            last = rep["witness"]["path"][-1]
            if last["field"] != rep["field"] or last["to"] != rep["outside"]:
                fail(where, "witness path does not end at the blamed "
                            f"(field, outside) pair: last hop stores into "
                            f"({last['field']!r}, {last['to']!r}), report "
                            f"blames ({rep['field']!r}, {rep['outside']!r})")
    for name, t in doc["metrics"]["timing"].items():
        if sum(t["histogram_us_pow2"]) != t["samples"]:
            fail(f"$.metrics.timing.{name}",
                 "histogram buckets do not sum to the sample count")


def check_outcome_invariants(doc, where):
    status = doc["status"]
    for li, loop in enumerate(doc["loops"]):
        at = f"{where}.loops[{li}]"
        if loop["sites_completed"] > loop["sites_total"]:
            fail(at, "sites_completed exceeds sites_total")
        if loop["partial"] and loop["stop_reason"] == "none":
            fail(at, "a partial loop must carry a stop reason")
        if loop["partial"] and status not in ("deadline-expired", "cancelled"):
            fail(at, f"partial loop inside a {status!r} outcome")
    if status == "loop-not-found":
        if "missing_label" not in doc or "known_labels" not in doc:
            fail(where, "loop-not-found must name the missing label and "
                        "list the known ones")
        if doc["loops"]:
            fail(where, "loop-not-found outcomes run no loops")
    if status in ("compile-error", "invalid-request", "overloaded",
                  "worker-lost", "unsupported-version"):
        if not doc.get("diagnostics"):
            fail(where, f"{status} must carry diagnostics")
    if status in ("overloaded", "worker-lost", "unsupported-version"):
        # Fleet rejections never reach a worker: no loop ever runs.
        if doc["loops"]:
            fail(where, f"a {status} outcome runs no loops")
    if status == "ok":
        if "loops_not_run" in doc:
            fail(where, "an ok outcome ran every requested loop")
        for li, loop in enumerate(doc["loops"]):
            if loop["partial"]:
                fail(f"{where}.loops[{li}]", "an ok outcome has no partial "
                                             "loops")


def check_snapshot_line(doc, where):
    """Light shape check on a stats/health line (the full stats shape is
    exercised by the C++ tests; here we pin the keys greps rely on)."""
    required = {
        "stats": ("v", "uptime_us", "requests", "queue_depth", "by_status",
                  "by_origin", "sessions", "mem"),
        "health": ("v", "status", "uptime_us", "requests", "sessions",
                   "queue_depth"),
        "fleet-stats": ("v", "uptime_us", "workers", "workers_live",
                        "connections", "requests", "admitted", "rejected",
                        "completed", "inflight", "peak_inflight",
                        "per_worker"),
        "fleet-health": ("v", "status", "uptime_us", "workers",
                         "workers_live", "connections", "inflight"),
        "fleet-listening": ("v", "host", "port", "workers"),
    }[doc["type"]]
    for key in required:
        if key not in doc:
            fail(where, f"{doc['type']} line missing key {key!r}")
    if doc["v"] != 1:
        fail(where, f"unknown snapshot version {doc['v']!r}")


def validate_outcomes(path, schema):
    counts = {}
    with open(path) as f:
        lines = f.readlines()
    n = snapshots = 0
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        where = f"line[{i + 1}]"
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(where, f"not a JSON document: {e}")
        # Control-verb answers interleave with outcomes on the serve and
        # fleet wires; outcomes never carry a "type" key (the schema is
        # closed). The fleet-listening banner is the one stdout line a
        # --listen transcript may lead with.
        if isinstance(doc, dict) and doc.get("type") in (
                "stats", "health", "fleet-stats", "fleet-health",
                "fleet-listening"):
            check_snapshot_line(doc, where)
            snapshots += 1
            continue
        validate(doc, schema, where)
        check_outcome_invariants(doc, where)
        counts[doc["status"]] = counts.get(doc["status"], 0) + 1
        n += 1
    if n == 0:
        fail("$", "transcript contains no outcomes")
    breakdown = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    extra = f" and {snapshots} snapshot lines" if snapshots else ""
    print(f"validate_report: OK: {path} holds {n} valid outcomes "
          f"({breakdown}){extra}")


# Per-event-type payload keys the schema's closed-but-flat property table
# cannot tie to the "type" value.
EVENT_PAYLOAD = {
    "request-received": ("id", "req", "queue_us"),
    "request-admitted": ("id", "req", "origin"),
    "request-completed": ("id", "req", "status", "wall_us"),
    "request-degraded": ("id", "req", "status", "wall_us"),
    "session-insert": ("req", "key", "bytes"),
    "session-hit": ("req", "key"),
    "session-patch": ("req", "ancestor_key", "key", "changed_bodies"),
    "session-evict": ("req", "key", "bytes"),
    "deadline-expired": ("id", "req", "loops_completed", "loops_not_run"),
    "cancelled": ("id", "req", "loops_completed", "loops_not_run"),
    "snapshot": ("stats",),
    "wire-v1-deprecated": ("id",),
    "worker-spawn": ("worker", "pid"),
    "worker-exit": ("worker", "pid"),
    "connection-open": ("conn",),
    "connection-close": ("conn",),
    "fleet-admit": ("conn", "id", "worker"),
    "fleet-route": ("conn", "id", "worker", "key"),
    "fleet-reject": ("conn", "id", "reason"),
    "fleet-complete": ("conn", "id", "worker", "status", "wall_us"),
}


def validate_events(path, schema):
    counts = {}
    prev_seq = 0
    prev_ts = 0
    received = set()
    with open(path) as f:
        lines = f.readlines()
    n = 0
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        where = f"line[{i + 1}]"
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(where, f"not a JSON document: {e}")
        validate(doc, schema, where)

        if doc["seq"] != prev_seq + 1:
            fail(where, f"seq {doc['seq']} breaks the contiguous sequence "
                        f"(previous was {prev_seq})")
        prev_seq = doc["seq"]
        if doc["ts_us"] < prev_ts:
            fail(where, f"ts_us {doc['ts_us']} moves backwards "
                        f"(previous was {prev_ts})")
        prev_ts = doc["ts_us"]

        etype = doc["type"]
        for key in EVENT_PAYLOAD[etype]:
            if key not in doc:
                fail(where, f"{etype} event missing key {key!r}")
        if etype == "request-received":
            received.add(doc["req"])
        elif etype in ("request-completed", "request-degraded"):
            if doc["req"] not in received:
                fail(where, f"{etype} for req {doc['req']} without a "
                            "preceding request-received")
            if etype == "request-completed" and doc["status"] != "ok":
                fail(where, "request-completed must carry status \"ok\"")
            if etype == "request-degraded" and doc["status"] == "ok":
                fail(where, "request-degraded cannot carry status \"ok\"")
        elif etype == "snapshot":
            if doc["stats"].get("type") != "stats":
                fail(where, "snapshot events embed a stats rendering")
        counts[etype] = counts.get(etype, 0) + 1
        n += 1
    if n == 0:
        fail("$", "event log contains no events")
    terminal = counts.get("request-completed", 0) + \
        counts.get("request-degraded", 0)
    if terminal != len(received):
        fail("$", f"{len(received)} requests received but {terminal} "
                  "completed/degraded events (every request must terminate)")
    # The fleet's admission invariant: every admitted request is answered
    # -- by its worker or by the worker-lost drain -- exactly once.
    admitted = counts.get("fleet-admit", 0)
    fleet_done = counts.get("fleet-complete", 0)
    if admitted != fleet_done:
        fail("$", f"{admitted} fleet-admit events but {fleet_done} "
                  "fleet-complete events (an admitted request went "
                  "unanswered)")
    breakdown = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    print(f"validate_report: OK: {path} holds {n} valid events "
          f"({breakdown})")


def diff_stable(path_a, path_b, ignore):
    def load(path):
        with open(path) as f:
            return json.load(f)

    def strip(doc):
        stable = {
            k: v for k, v in doc["metrics"]["stable"].items()
            if not any(k == e or (e.endswith("-") and k.startswith(e))
                       for e in ignore)
        }
        loops = json.loads(json.dumps(doc["loops"]))
        if "cfl-states-visited" in ignore:
            # The per-witness cfl block echoes the blamed query's cost;
            # ignoring the counter ignores its echo too. The answer-level
            # fields (fell_back, refuted_value_sites) always compare.
            for loop in loops:
                for rep in loop.get("reports", []):
                    if isinstance(rep.get("cfl"), dict):
                        rep["cfl"].pop("states_visited", None)
        return {"input": doc["input"], "loops": loops, "stable": stable}

    a, b = strip(load(path_a)), strip(load(path_b))
    for section in ("input", "loops", "stable"):
        if a[section] != b[section]:
            if section == "stable":
                keys = sorted(set(a["stable"]) | set(b["stable"]))
                for k in keys:
                    if a["stable"].get(k) != b["stable"].get(k):
                        fail(f"$.metrics.stable.{k}",
                             f"{a['stable'].get(k)} vs "
                             f"{b['stable'].get(k)} (not in the ignore "
                             "list)")
            fail(f"$.{section}", f"differs between {path_a} and {path_b}")
    ignored = ", ".join(ignore) if ignore else "none"
    print(f"validate_report: OK: {path_a} and {path_b} agree on input, "
          f"loops and stable metrics (ignored: {ignored})")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    trace_mode = "--trace" in argv
    outcomes_mode = "--outcomes" in argv
    events_mode = "--events" in argv
    if "--diff-stable" in argv:
        ignore = []
        if "--ignore-stable" in argv:
            raw = argv[argv.index("--ignore-stable") + 1]
            ignore = [e for e in raw.split(",") if e]
            args = [a for a in args if a != raw]
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        diff_stable(args[0], args[1], ignore)
        return 0
    if sum((trace_mode, outcomes_mode, events_mode)) > 1:
        print("validate_report: --trace, --outcomes and --events are "
              "exclusive", file=sys.stderr)
        return 2
    schema_path = None
    if "--schema" in argv:
        schema_path = argv[argv.index("--schema") + 1]
        args = [a for a in args if a != schema_path]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    here = os.path.dirname(os.path.abspath(__file__))
    if schema_path is None:
        default = ("trace_schema.json" if trace_mode else
                   "outcome_schema.json" if outcomes_mode else
                   "event_schema.json" if events_mode else
                   "report_schema.json")
        schema_path = os.path.join(here, default)

    with open(schema_path) as f:
        schema = json.load(f)

    if outcomes_mode:
        validate_outcomes(args[0], schema)
        return 0
    if events_mode:
        validate_events(args[0], schema)
        return 0

    with open(args[0]) as f:
        doc = json.load(f)

    validate(doc, schema)
    if not trace_mode:
        check_report_invariants(doc)

    what = "trace" if trace_mode else "report"
    n = len(doc["traceEvents"]) if trace_mode else sum(
        len(l["reports"]) for l in doc["loops"])
    print(f"validate_report: OK: {args[0]} is a valid {what} "
          f"({n} {'events' if trace_mode else 'reports'})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
