#!/usr/bin/env python3
"""Validate the tool's machine-readable outputs against the checked-in
schemas, with no third-party dependencies (CI runners only have the
standard library, so this implements the small JSON Schema subset the
schemas actually use rather than importing `jsonschema`).

Usage: validate_report.py REPORT.json [--schema bench/report_schema.json]
       validate_report.py --trace TRACE.json [--schema bench/trace_schema.json]

Supported keywords: type (string or list; "integer" excludes bools),
const, enum, required, properties, additionalProperties (false or a
schema), items, minItems, maxItems, minimum. Anything else in a schema is
a hard error -- better to crash in CI than to silently not validate.

Beyond the schema, the report check asserts cross-field invariants the
schema language cannot express: every witness path ends at the blamed
(field, outside) pair of its report, and every timing histogram's bucket
counts sum to its sample count.
"""

import json
import os
import sys

HANDLED = {
    "type", "const", "enum", "required", "properties",
    "additionalProperties", "items", "minItems", "maxItems", "minimum",
    "$comment",
}


def fail(path, msg):
    print(f"validate_report: FAIL at {path or '$'}: {msg}", file=sys.stderr)
    sys.exit(1)


def type_ok(value, name):
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    if name == "string":
        return isinstance(value, str)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "null":
        return value is None
    raise ValueError(f"unknown type name {name!r} in schema")


def validate(value, schema, path=""):
    unknown = set(schema) - HANDLED
    if unknown:
        fail(path, f"schema uses unsupported keywords {sorted(unknown)}")

    if "type" in schema:
        names = schema["type"]
        names = names if isinstance(names, list) else [names]
        if not any(type_ok(value, n) for n in names):
            fail(path, f"expected type {names}, got {type(value).__name__}")
    if "const" in schema and value != schema["const"]:
        fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}")
            elif extra is False:
                fail(path, f"unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            fail(path, f"{len(value)} items < minItems {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            fail(path, f"{len(value)} items > maxItems {schema['maxItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{path}[{i}]")


def check_report_invariants(doc):
    for li, loop in enumerate(doc["loops"]):
        for ri, rep in enumerate(loop["reports"]):
            where = f"$.loops[{li}].reports[{ri}]"
            last = rep["witness"]["path"][-1]
            if last["field"] != rep["field"] or last["to"] != rep["outside"]:
                fail(where, "witness path does not end at the blamed "
                            f"(field, outside) pair: last hop stores into "
                            f"({last['field']!r}, {last['to']!r}), report "
                            f"blames ({rep['field']!r}, {rep['outside']!r})")
    for name, t in doc["metrics"]["timing"].items():
        if sum(t["histogram_us_pow2"]) != t["samples"]:
            fail(f"$.metrics.timing.{name}",
                 "histogram buckets do not sum to the sample count")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    trace_mode = "--trace" in argv
    schema_path = None
    if "--schema" in argv:
        schema_path = argv[argv.index("--schema") + 1]
        args = [a for a in args if a != schema_path]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    here = os.path.dirname(os.path.abspath(__file__))
    if schema_path is None:
        schema_path = os.path.join(
            here, "trace_schema.json" if trace_mode else "report_schema.json")

    with open(args[0]) as f:
        doc = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    validate(doc, schema)
    if not trace_mode:
        check_report_invariants(doc)

    what = "trace" if trace_mode else "report"
    n = len(doc["traceEvents"]) if trace_mode else sum(
        len(l["reports"]) for l in doc["loops"])
    print(f"validate_report: OK: {args[0]} is a valid {what} "
          f"({n} {'events' if trace_mode else 'reports'})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
