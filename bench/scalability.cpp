//===-- scalability.cpp - analysis cost vs program size & parallelism -------===//
//
// Supports the paper's practicality claim ("due to the client-driven
// nature of the analysis ... LeakChecker is able to quickly detect leaks
// for all the applications, including large programs such as Eclipse")
// and records the perf trajectory of the demand-query engine:
//
//   (a) size sweep -- synthetic programs of growing size (N independent
//       subsystems of which the checked loop touches one); per-loop time
//       should stay near-flat as dead weight is added;
//   (b) jobs sweep -- a heavy subject whose loop region spans every
//       subsystem, analyzed at --jobs 1/2/4/8; wall time, states visited
//       and memo-cache hit rates per width;
//   (c) memo ablation -- the same subject single-threaded with the CFL
//       sub-traversal cache on vs off;
//   (d) summary ablation -- the heavy subject at two sizes with method
//       summaries on vs off: states visited must drop substantially
//       (composition short-circuits the per-cluster call chains) while
//       the rendered reports stay byte-identical.
//
// Emits BENCH_scalability.json (see --out) so CI can track regressions.
//
// Run:  ./build/bench/scalability [--quick] [--out PATH]
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "bench/RunLoop.h"

#include "frontend/Lower.h"
#include "support/MemStats.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace lc;

namespace {

/// Emits a program with \p Subsystems clusters. Each cluster has a service
/// class with a few methods and its own little data model; cluster 0 also
/// contains the leaky loop. Only cluster 0 is touched by the loop: this is
/// the "dead weight" shape for the size sweep.
std::string makeProgram(unsigned Subsystems) {
  std::ostringstream OS;
  for (unsigned C = 0; C < Subsystems; ++C) {
    OS << "class Record" << C << " { int v; Record" << C << " next; }\n";
    OS << "class Service" << C << " {\n";
    OS << "  Record" << C << " head;\n";
    OS << "  void insert(int v) {\n";
    OS << "    Record" << C << " r = new Record" << C << "();\n";
    OS << "    r.v = v;\n";
    OS << "    r.next = this.head;\n";
    OS << "    this.head = r;\n";
    OS << "  }\n";
    OS << "  int total() {\n";
    OS << "    int t = 0;\n";
    OS << "    Record" << C << " r = this.head;\n";
    OS << "    while (r != null) { t = t + r.v; r = r.next; }\n";
    OS << "    return t;\n";
    OS << "  }\n";
    OS << "  void churn(int n) {\n";
    OS << "    int i = 0;\n";
    OS << "    while (i < n) { this.insert(i); i = i + 1; }\n";
    OS << "  }\n";
    OS << "}\n";
  }
  OS << "class Sink { Object[] kept = new Object[1024]; int n;\n";
  OS << "  void keep(Object o) { this.kept[this.n] = o; this.n = this.n + 1; }\n";
  OS << "}\n";
  OS << "class Main { static void main() {\n";
  for (unsigned C = 0; C < Subsystems; ++C)
    OS << "  Service" << C << " s" << C << " = new Service" << C << "();\n";
  OS << "  Sink sink = new Sink();\n";
  OS << "  int i = 0;\n";
  OS << "  hot: while (i < 10) {\n";
  OS << "    Record0 r = new Record0();\n";
  OS << "    r.v = i;\n";
  OS << "    sink.keep(r);\n";
  OS << "    s0.churn(2);\n";
  OS << "    i = i + 1;\n";
  OS << "  }\n";
  // Touch every subsystem outside the loop so it is call-graph reachable.
  for (unsigned C = 0; C < Subsystems; ++C)
    OS << "  s" << C << ".churn(3);\n";
  OS << "} }\n";
  return OS.str();
}

/// Emits the heavy subject for the jobs sweep: the checked loop calls into
/// every cluster, so the inside region (and the per-site query set) grows
/// with \p Clusters. Every cluster keeps its records in one shared Sink
/// and reads them back through its own load statements, so each cluster's
/// demand queries hop through the same accumulating array-element slot --
/// exactly the overlapping-sub-traversal shape the memo cache exists for:
/// the slot's flow set spans all clusters and is computed once.
std::string makeHeavySubject(unsigned Clusters) {
  std::ostringstream OS;
  OS << "class Sink { Object[] kept = new Object[4096]; int n;\n";
  OS << "  void keep(Object o) { this.kept[this.n] = o; this.n = this.n + 1; }\n";
  OS << "}\n";
  for (unsigned C = 0; C < Clusters; ++C) {
    OS << "class Rec" << C << " { int v; Rec" << C << " next; }\n";
    OS << "class Svc" << C << " {\n";
    OS << "  Rec" << C << " head;\n";
    OS << "  Sink store;\n";
    OS << "  Rec" << C << " make() {\n";
    OS << "    Rec" << C << " r = new Rec" << C << "();\n";
    OS << "    this.head = r;\n";
    OS << "    return r;\n";
    OS << "  }\n";
    // A four-deep wrapper chain over make(): the demand queries' value
    // cones descend it at every cluster, which is exactly the shape the
    // method-summary pass collapses to a single composition step.
    for (unsigned W = 1; W <= 4; ++W) {
      OS << "  Rec" << C << " m" << W << "() {\n";
      OS << "    Rec" << C << " r = this."
         << (W == 1 ? std::string("make") : "m" + std::to_string(W - 1))
         << "();\n";
      OS << "    return r;\n";
      OS << "  }\n";
    }
    OS << "  void step(Sink s) {\n";
    OS << "    this.store = s;\n";
    OS << "    Rec" << C << " r = this.m4();\n";
    OS << "    s.keep(r);\n";
    OS << "    Sink t = this.store;\n";
    OS << "    Object o0 = t.kept[0];\n";
    OS << "    Object o1 = t.kept[1];\n";
    OS << "    Object o2 = t.kept[2];\n";
    OS << "    Object o3 = t.kept[3];\n";
    OS << "    r.v = r.v + 1;\n";
    OS << "  }\n";
    OS << "}\n";
  }
  OS << "class Main { static void main() {\n";
  OS << "  Sink sink = new Sink();\n";
  for (unsigned C = 0; C < Clusters; ++C)
    OS << "  Svc" << C << " s" << C << " = new Svc" << C << "();\n";
  OS << "  int i = 0;\n";
  OS << "  hot: while (i < 4) {\n";
  for (unsigned C = 0; C < Clusters; ++C)
    OS << "    s" << C << ".step(sink);\n";
  OS << "    i = i + 1;\n";
  OS << "  }\n";
  OS << "} }\n";
  return OS.str();
}

struct RunSample {
  double WallMs = 0;
  uint64_t StatesVisited = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t Queries = 0;
  size_t Reports = 0;
  std::string Report; ///< rendered leak report (ablation byte-diffs)
};

/// One cold-cache end-to-end analysis of the heavy subject: fresh
/// substrate (so the memo cache starts empty). All accounting -- wall
/// time included -- comes from the run's own metrics registry; the bench
/// keeps no stopwatch of its own.
RunSample runOnce(const std::string &Src, uint32_t Jobs, bool Memoize,
                  bool Summaries = true) {
  LeakOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cfl.Memoize = Memoize;
  Opts.Summaries = Summaries;
  DiagnosticEngine Diags;
  auto Checker = LeakChecker::fromSource(Src, Diags, Opts);
  if (!Checker) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    std::exit(1);
  }
  LoopId Loop = Checker->program().findLoop("hot");
  LeakAnalysisResult R = bench::runLoop(*Checker, Loop);
  RunSample S;
  S.WallMs = R.Statistics.time("leak-analysis") * 1e3;
  S.StatesVisited = R.Statistics.get("cfl-states-visited");
  S.CacheHits = R.Statistics.get("cfl-cache-hits");
  S.CacheMisses = R.Statistics.get("cfl-cache-misses");
  S.Queries = R.Statistics.get("cfl-queries");
  S.Reports = R.Reports.size();
  S.Report = renderLeakReport(Checker->program(), R);
  return S;
}

/// Best-of-N to shave scheduler noise; stats come from the fastest run
/// (they are identical across runs anyway, cache splits aside).
RunSample runBest(const std::string &Src, uint32_t Jobs, bool Memoize,
                  unsigned Reps, bool Summaries = true) {
  RunSample Best;
  for (unsigned I = 0; I < Reps; ++I) {
    RunSample S = runOnce(Src, Jobs, Memoize, Summaries);
    if (I == 0 || S.WallMs < Best.WallMs) {
      double Wall = S.WallMs;
      Best = std::move(S);
      Best.WallMs = Wall;
    }
  }
  return Best;
}

double hitRate(const RunSample &S) {
  uint64_t Total = S.CacheHits + S.CacheMisses;
  return Total == 0 ? 0.0 : double(S.CacheHits) / double(Total);
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_scalability.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  // --- (a) size sweep: dead weight must stay off the per-loop bill --------
  std::printf("Scalability (a): checked-loop cost vs whole-program size\n\n");
  std::printf("%11s %8s %8s %14s %14s %8s\n", "subsystems", "methods",
              "stmts", "substrate(ms)", "per-loop(ms)", "reports");

  struct SizeRow {
    unsigned Subsystems;
    size_t Methods, Stmts, Reports;
    double SubstrateMs, PerLoopMs;
  };
  std::vector<SizeRow> SizeRows;
  std::vector<unsigned> Sizes =
      Quick ? std::vector<unsigned>{1u, 4u, 16u}
            : std::vector<unsigned>{1u, 2u, 4u, 8u, 16u, 32u, 64u};
  for (unsigned N : Sizes) {
    std::string Src = makeProgram(N);
    DiagnosticEngine Diags;
    auto T0 = std::chrono::steady_clock::now();
    auto Checker = LeakChecker::fromSource(Src, Diags);
    auto T1 = std::chrono::steady_clock::now();
    if (!Checker) {
      std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
      return 1;
    }
    LoopId Loop = Checker->program().findLoop("hot");
    auto Result = bench::runLoop(*Checker, Loop);
    // Per-loop cost comes from the run's own "leak-analysis" timer; only
    // substrate construction (which spans several analyses) is timed here.
    SizeRow Row{N,
                Checker->reachableMethods(),
                Checker->reachableStmts(),
                Result.Reports.size(),
                std::chrono::duration<double, std::milli>(T1 - T0).count(),
                Result.Statistics.time("leak-analysis") * 1e3};
    SizeRows.push_back(Row);
    std::printf("%11u %8zu %8zu %14.2f %14.2f %8zu\n", Row.Subsystems,
                Row.Methods, Row.Stmts, Row.SubstrateMs, Row.PerLoopMs,
                Row.Reports);
  }

  // --- (b) jobs sweep on the heavy subject --------------------------------
  unsigned Clusters = Quick ? 12 : 48;
  unsigned Reps = Quick ? 2 : 3;
  std::string Heavy = makeHeavySubject(Clusters);
  size_t HeavyMethods = 0, HeavyStmts = 0;
  {
    DiagnosticEngine Diags;
    auto Checker = LeakChecker::fromSource(Heavy, Diags);
    if (!Checker) {
      std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
      return 1;
    }
    HeavyMethods = Checker->reachableMethods();
    HeavyStmts = Checker->reachableStmts();
  }

  // --- (m) memory: heap allocations + peak RSS on the largest size --------
  // One cold single-thread substrate construction + analysis of the heavy
  // subject, bracketed by the counting operator new (lc_alloc_hook). The
  // source is compiled outside the bracket: the gate covers the analysis
  // layer this repo engineers (PAG, Andersen, summaries, CFL, leak
  // check), not the string-heavy frontend. The allocation delta is exact;
  // peak RSS is process-wide at this point (after the size sweep), which
  // is stable enough for the 25% regression band.
  uint64_t MemAllocs = 0, MemPeakRssKb = 0, MemQueries = 0;
  uint64_t MemSubstrateAllocs = 0, MemCheckAllocs = 0;
  bool AllocHook = lc::mem::heapAllocsAvailable();
  {
    auto P = std::make_unique<Program>();
    DiagnosticEngine MemDiags;
    if (!compileSource(Heavy, *P, MemDiags)) {
      std::fprintf(stderr, "compile error:\n%s", MemDiags.str().c_str());
      return 1;
    }
    LeakOptions MemOpts;
    MemOpts.Jobs = 1;
    uint64_t Before = lc::mem::heapAllocs();
    auto Checker = LeakChecker::fromProgram(std::move(P), MemOpts);
    LoopId Loop = Checker->program().findLoop("hot");
    MemSubstrateAllocs = lc::mem::heapAllocs() - Before;
    LeakAnalysisResult R = bench::runLoop(*Checker, Loop);
    MemAllocs = lc::mem::heapAllocs() - Before;
    MemCheckAllocs = MemAllocs - MemSubstrateAllocs;
    MemQueries = R.Statistics.get("cfl-queries");
    MemPeakRssKb = lc::mem::peakRssKb();
    std::printf("\nScalability (m): memory on the heavy subject "
                "(single thread, cold substrate)\n");
    if (AllocHook)
      std::printf("  heap allocations: %llu  (substrate %llu, check %llu; "
                  "%.1f per query, %llu queries)\n",
                  static_cast<unsigned long long>(MemAllocs),
                  static_cast<unsigned long long>(MemSubstrateAllocs),
                  static_cast<unsigned long long>(MemCheckAllocs),
                  MemQueries ? double(MemAllocs) / double(MemQueries) : 0.0,
                  static_cast<unsigned long long>(MemQueries));
    else
      std::printf("  heap allocations: unavailable (lc_alloc_hook not "
                  "linked)\n");
    std::printf("  peak RSS: %llu KiB\n",
                static_cast<unsigned long long>(MemPeakRssKb));
  }

  std::printf("\nScalability (b): heavy subject (%u clusters, %zu methods, "
              "%zu stmts) vs --jobs\n\n",
              Clusters, HeavyMethods, HeavyStmts);
  std::printf("%6s %12s %16s %12s %10s %8s\n", "jobs", "wall(ms)",
              "states-visited", "cache-hits", "hit-rate", "speedup");

  struct JobsRow {
    uint32_t Jobs;
    RunSample S;
    double Speedup;
  };
  std::vector<JobsRow> JobsRows;
  double BaseMs = 0;
  for (uint32_t J : {1u, 2u, 4u, 8u}) {
    RunSample S = runBest(Heavy, J, /*Memoize=*/true, Reps);
    if (J == 1)
      BaseMs = S.WallMs;
    double Speedup = S.WallMs > 0 ? BaseMs / S.WallMs : 0.0;
    JobsRows.push_back({J, S, Speedup});
    std::printf("%6u %12.2f %16llu %12llu %9.1f%% %7.2fx\n", J, S.WallMs,
                static_cast<unsigned long long>(S.StatesVisited),
                static_cast<unsigned long long>(S.CacheHits),
                hitRate(S) * 100.0, Speedup);
  }

  // --- (c) memo-cache ablation, single thread ------------------------------
  RunSample MemoOn = runBest(Heavy, 1, /*Memoize=*/true, Reps);
  RunSample MemoOff = runBest(Heavy, 1, /*Memoize=*/false, Reps);
  double MemoSpeedup = MemoOn.WallMs > 0 ? MemoOff.WallMs / MemoOn.WallMs : 0;
  std::printf("\nScalability (c): CFL memo cache, single thread\n");
  std::printf("  memo on : %10.2f ms  (hit rate %.1f%%)\n", MemoOn.WallMs,
              hitRate(MemoOn) * 100.0);
  std::printf("  memo off: %10.2f ms\n", MemoOff.WallMs);
  std::printf("  single-thread improvement: %.2fx\n", MemoSpeedup);

  // --- (d) summary ablation, single thread ---------------------------------
  struct SummaryRow {
    unsigned Clusters;
    RunSample On, Off;
    bool ReportsIdentical;
  };
  std::vector<SummaryRow> SummaryRows;
  std::printf("\nScalability (d): method summaries, single thread\n\n");
  std::printf("%9s %14s %14s %8s %12s %12s %9s\n", "clusters", "states-on",
              "states-off", "ratio", "wall-on(ms)", "wall-off(ms)",
              "reports");
  for (unsigned N : {Clusters / 2, Clusters}) {
    std::string Src = N == Clusters ? Heavy : makeHeavySubject(N);
    RunSample On = runBest(Src, 1, /*Memoize=*/true, Reps,
                           /*Summaries=*/true);
    RunSample Off = runBest(Src, 1, /*Memoize=*/true, Reps,
                            /*Summaries=*/false);
    bool Same = On.Report == Off.Report;
    double Ratio = Off.StatesVisited
                       ? double(On.StatesVisited) / double(Off.StatesVisited)
                       : 0.0;
    SummaryRows.push_back({N, std::move(On), std::move(Off), Same});
    const SummaryRow &R = SummaryRows.back();
    std::printf("%9u %14llu %14llu %7.2fx %12.2f %12.2f %9s\n", N,
                static_cast<unsigned long long>(R.On.StatesVisited),
                static_cast<unsigned long long>(R.Off.StatesVisited), Ratio,
                R.On.WallMs, R.Off.WallMs,
                Same ? "identical" : "DIFFER");
    if (!Same)
      std::fprintf(stderr,
                   "warning: reports differ with summaries on vs off at "
                   "%u clusters -- composition is not exact\n",
                   N);
  }

  // --- JSON ----------------------------------------------------------------
  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"scalability\",\n");
  std::fprintf(Out, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(Out,
               "  \"heavy_subject\": {\"clusters\": %u, \"methods\": %zu, "
               "\"stmts\": %zu},\n",
               Clusters, HeavyMethods, HeavyStmts);
  std::fprintf(Out, "  \"jobs_sweep\": [\n");
  for (size_t I = 0; I < JobsRows.size(); ++I) {
    const JobsRow &R = JobsRows[I];
    std::fprintf(Out,
                 "    {\"jobs\": %u, \"wall_ms\": %.3f, \"states_visited\": "
                 "%llu, \"cache_hits\": %llu, \"cache_misses\": %llu, "
                 "\"cache_hit_rate\": %.4f, \"speedup\": %.3f}%s\n",
                 R.Jobs, R.S.WallMs,
                 static_cast<unsigned long long>(R.S.StatesVisited),
                 static_cast<unsigned long long>(R.S.CacheHits),
                 static_cast<unsigned long long>(R.S.CacheMisses),
                 hitRate(R.S), R.Speedup,
                 I + 1 < JobsRows.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out,
               "  \"memo_ablation\": {\"on_wall_ms\": %.3f, \"off_wall_ms\": "
               "%.3f, \"single_thread_improvement\": %.3f, "
               "\"cache_hit_rate\": %.4f},\n",
               MemoOn.WallMs, MemoOff.WallMs, MemoSpeedup, hitRate(MemoOn));
  std::fprintf(Out, "  \"summary_ablation\": [\n");
  for (size_t I = 0; I < SummaryRows.size(); ++I) {
    const SummaryRow &R = SummaryRows[I];
    double Ratio = R.Off.StatesVisited ? double(R.On.StatesVisited) /
                                             double(R.Off.StatesVisited)
                                       : 0.0;
    std::fprintf(Out,
                 "    {\"clusters\": %u, \"states_on\": %llu, \"states_off\": "
                 "%llu, \"states_ratio\": %.4f, \"wall_on_ms\": %.3f, "
                 "\"wall_off_ms\": %.3f, \"reports_identical\": %s}%s\n",
                 R.Clusters,
                 static_cast<unsigned long long>(R.On.StatesVisited),
                 static_cast<unsigned long long>(R.Off.StatesVisited), Ratio,
                 R.On.WallMs, R.Off.WallMs,
                 R.ReportsIdentical ? "true" : "false",
                 I + 1 < SummaryRows.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out,
               "  \"memory\": {\"alloc_hook\": %s, \"heap_allocs\": %llu, "
               "\"queries\": %llu, \"allocs_per_query\": %.2f, "
               "\"peak_rss_kb\": %llu},\n",
               AllocHook ? "true" : "false",
               static_cast<unsigned long long>(MemAllocs),
               static_cast<unsigned long long>(MemQueries),
               MemQueries ? double(MemAllocs) / double(MemQueries) : 0.0,
               static_cast<unsigned long long>(MemPeakRssKb));
  std::fprintf(Out, "  \"size_sweep\": [\n");
  for (size_t I = 0; I < SizeRows.size(); ++I) {
    const SizeRow &R = SizeRows[I];
    std::fprintf(Out,
                 "    {\"subsystems\": %u, \"methods\": %zu, \"stmts\": %zu, "
                 "\"substrate_ms\": %.3f, \"per_loop_ms\": %.3f, "
                 "\"reports\": %zu}%s\n",
                 R.Subsystems, R.Methods, R.Stmts, R.SubstrateMs, R.PerLoopMs,
                 R.Reports, I + 1 < SizeRows.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("\nwrote %s\n", OutPath.c_str());

  std::printf("\nper-loop time should stay near-flat in (a): the "
              "demand-driven check only explores\nthe loop's region, not "
              "the growing dead weight.\n");
  return 0;
}
