//===-- scalability.cpp - analysis cost vs program size ---------------------===//
//
// Supports the paper's practicality claim ("due to the client-driven
// nature of the analysis ... LeakChecker is able to quickly detect leaks
// for all the applications, including large programs such as Eclipse"):
// generates synthetic programs of growing size -- N independent subsystems,
// each a cluster of classes and methods, of which the checked loop touches
// exactly one -- and measures (a) whole-substrate construction time
// (call graph + PAG + Andersen) and (b) per-loop leak-analysis time.
// The per-loop time should stay roughly flat as dead-weight subsystems are
// added, because the checked region does not grow.
//
// Run:  ./build/bench/scalability
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"

#include <chrono>
#include <cstdio>
#include <sstream>

using namespace lc;

namespace {

/// Emits a program with \p Subsystems clusters. Each cluster has a service
/// class with a few methods and its own little data model; cluster 0 also
/// contains the leaky loop.
std::string makeProgram(unsigned Subsystems) {
  std::ostringstream OS;
  for (unsigned C = 0; C < Subsystems; ++C) {
    OS << "class Record" << C << " { int v; Record" << C << " next; }\n";
    OS << "class Service" << C << " {\n";
    OS << "  Record" << C << " head;\n";
    OS << "  void insert(int v) {\n";
    OS << "    Record" << C << " r = new Record" << C << "();\n";
    OS << "    r.v = v;\n";
    OS << "    r.next = this.head;\n";
    OS << "    this.head = r;\n";
    OS << "  }\n";
    OS << "  int total() {\n";
    OS << "    int t = 0;\n";
    OS << "    Record" << C << " r = this.head;\n";
    OS << "    while (r != null) { t = t + r.v; r = r.next; }\n";
    OS << "    return t;\n";
    OS << "  }\n";
    OS << "  void churn(int n) {\n";
    OS << "    int i = 0;\n";
    OS << "    while (i < n) { this.insert(i); i = i + 1; }\n";
    OS << "  }\n";
    OS << "}\n";
  }
  OS << "class Sink { Object[] kept = new Object[1024]; int n;\n";
  OS << "  void keep(Object o) { this.kept[this.n] = o; this.n = this.n + 1; }\n";
  OS << "}\n";
  OS << "class Main { static void main() {\n";
  for (unsigned C = 0; C < Subsystems; ++C)
    OS << "  Service" << C << " s" << C << " = new Service" << C << "();\n";
  OS << "  Sink sink = new Sink();\n";
  OS << "  int i = 0;\n";
  OS << "  hot: while (i < 10) {\n";
  OS << "    Record0 r = new Record0();\n";
  OS << "    r.v = i;\n";
  OS << "    sink.keep(r);\n";
  OS << "    s0.churn(2);\n";
  OS << "    i = i + 1;\n";
  OS << "  }\n";
  // Touch every subsystem outside the loop so it is call-graph reachable.
  for (unsigned C = 0; C < Subsystems; ++C)
    OS << "  s" << C << ".churn(3);\n";
  OS << "} }\n";
  return OS.str();
}

} // namespace

int main() {
  std::printf("Scalability: checked-loop cost vs whole-program size\n\n");
  std::printf("%11s %8s %8s %14s %14s %8s\n", "subsystems", "methods",
              "stmts", "substrate(ms)", "per-loop(ms)", "reports");

  for (unsigned N : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::string Src = makeProgram(N);
    DiagnosticEngine Diags;
    auto T0 = std::chrono::steady_clock::now();
    auto Checker = LeakChecker::fromSource(Src, Diags);
    auto T1 = std::chrono::steady_clock::now();
    if (!Checker) {
      std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
      return 1;
    }
    LoopId Loop = Checker->program().findLoop("hot");
    auto Result = Checker->check(Loop);
    auto T2 = std::chrono::steady_clock::now();
    std::printf("%11u %8zu %8zu %14.2f %14.2f %8zu\n", N,
                Checker->reachableMethods(), Checker->reachableStmts(),
                std::chrono::duration<double, std::milli>(T1 - T0).count(),
                std::chrono::duration<double, std::milli>(T2 - T1).count(),
                Result.Reports.size());
  }
  std::printf("\nper-loop time should stay near-flat: the demand-driven "
              "check only explores the\nloop's region, not the growing "
              "dead weight.\n");
  return 0;
}
