//===-- edit_storm.cpp - incremental re-analysis across program edits -------===//
//
// The IDE workload: a developer edits one method body at a time while the
// checker keeps a warm session. Each edit is re-analyzed twice --
//
//   cold:    a from-scratch LeakChecker::fromSource of the edited source,
//   patched: LeakChecker::patchFrom against the previous revision's warm
//            checker (method-level diff, PAG splice, incremental Andersen,
//            summary reuse, CFL memo adoption),
//
// -- and the two rendered reports are byte-compared: incremental reuse may
// only change the bill, never the answer. The storm runs the full
// {jobs 1,4} x {memo on/off} x {summaries on/off} matrix over the SAME
// deterministic edit sequence, so reports are also byte-compared across
// configs (the engine's determinism contract extends to patched sessions).
//
// The gate (check_regression.py --edits) requires, per config, the median
// patched re-analysis to cost at most 0.25x of the cold one, every edit to
// be served by the patch path, and all byte-diffs to be empty.
//
// Emits BENCH_edit_storm.json (see --out).
//
// Run:  ./build/bench/edit_storm [--quick] [--out PATH]
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "bench/RunLoop.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace lc;

namespace {

/// The heavy subject from scalability.cpp (every cluster's demand queries
/// hop through one shared Sink slot), with one editable knob per cluster:
/// \p Variant[C] selects the tail of Svc<C>::step among three bodies with
/// the same signature -- a scalar tweak, an extra local, and an extra load
/// from the shared slot (which perturbs the demand-query structure, not
/// just the IR). Changing one variant is exactly a single-method body edit.
///
/// Only the first \p Hot clusters are stepped inside the `hot:` loop the
/// storm re-checks; the rest are stepped once during setup, so they are
/// reachable, instantiated, and fully paid for by every cold build
/// (lowering, call graph, Andersen, summaries) without inflating the
/// per-edit check. Hot clusters funnel through the shared `kept` slot
/// (cross-cluster demand hops); the others stash into a separate `held`
/// array whose stores cannot alias the hot loads, so the checked query
/// cone stays bounded while the program grows. That is the IDE shape this
/// bench models: the program keeps growing, the loop under the cursor
/// does not.
std::string makeSubject(unsigned Clusters, unsigned Hot,
                        const std::vector<unsigned> &Variant) {
  std::ostringstream OS;
  OS << "class Sink { Object[] kept = new Object[4096]; "
        "Object[] held = new Object[4096]; int n;\n";
  OS << "  void keep(Object o) { this.kept[this.n] = o; this.n = this.n + 1; }\n";
  OS << "  void stash(Object o) { this.held[this.n] = o; this.n = this.n + 1; }\n";
  OS << "}\n";
  for (unsigned C = 0; C < Clusters; ++C) {
    const char *Sl = C < Hot ? "kept" : "held";
    OS << "class Rec" << C << " { int v; Rec" << C << " next; }\n";
    OS << "class Svc" << C << " {\n";
    OS << "  Rec" << C << " head;\n";
    OS << "  Sink store;\n";
    OS << "  Rec" << C << " make() {\n";
    OS << "    Rec" << C << " r = new Rec" << C << "();\n";
    OS << "    this.head = r;\n";
    OS << "    return r;\n";
    OS << "  }\n";
    for (unsigned W = 1; W <= 4; ++W) {
      OS << "  Rec" << C << " m" << W << "() {\n";
      OS << "    Rec" << C << " r = this."
         << (W == 1 ? std::string("make") : "m" + std::to_string(W - 1))
         << "();\n";
      OS << "    return r;\n";
      OS << "  }\n";
    }
    OS << "  void step(Sink s) {\n";
    OS << "    this.store = s;\n";
    OS << "    Rec" << C << " r = this.m4();\n";
    OS << "    s." << (C < Hot ? "keep" : "stash") << "(r);\n";
    OS << "    Sink t = this.store;\n";
    OS << "    Object o0 = t." << Sl << "[0];\n";
    OS << "    Object o1 = t." << Sl << "[1];\n";
    OS << "    Object o2 = t." << Sl << "[2];\n";
    OS << "    Object o3 = t." << Sl << "[3];\n";
    switch (Variant[C] % 3) {
    case 0:
      OS << "    r.v = r.v + 1;\n";
      break;
    case 1:
      OS << "    int b = r.v + 2;\n";
      OS << "    r.v = b;\n";
      break;
    default:
      OS << "    Object o4 = t." << Sl << "[4];\n";
      OS << "    r.v = r.v + 1;\n";
      break;
    }
    OS << "  }\n";
    OS << "}\n";
  }
  OS << "class Main { static void main() {\n";
  OS << "  Sink sink = new Sink();\n";
  for (unsigned C = 0; C < Clusters; ++C)
    OS << "  Svc" << C << " s" << C << " = new Svc" << C << "();\n";
  for (unsigned C = 0; C < Clusters; ++C)
    OS << "  s" << C << ".step(sink);\n";
  OS << "  int i = 0;\n";
  OS << "  hot: while (i < 4) {\n";
  for (unsigned C = 0; C < Hot && C < Clusters; ++C)
    OS << "    s" << C << ".step(sink);\n";
  OS << "    i = i + 1;\n";
  OS << "  }\n";
  OS << "} }\n";
  return OS.str();
}

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

struct Analyzed {
  std::unique_ptr<LeakChecker> Checker;
  double WallMs = 0; ///< substrate + leak check, render excluded
  std::string Report;
  uint64_t MemoAdopted = 0, MemoInvalidated = 0;
};

Analyzed analyzeCold(const std::string &Src, const LeakOptions &Opts) {
  DiagnosticEngine Diags;
  auto T0 = Clock::now();
  auto Checker = LeakChecker::fromSource(Src, Diags, Opts);
  if (!Checker) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    std::exit(1);
  }
  LeakAnalysisResult R = bench::runLoop(*Checker, "hot", Checker->options());
  Analyzed A;
  A.WallMs = msSince(T0);
  A.Report = renderLeakReport(Checker->program(), R);
  A.Checker = std::move(Checker);
  return A;
}

/// Patched re-analysis of \p Src against the warm \p Prev session. Returns
/// a null Checker when the edit was not patchable (the gate counts that as
/// a miss); Prev stays warm in that case.
Analyzed analyzePatched(LeakChecker &Prev, const std::string &Src) {
  DiagnosticEngine Diags;
  auto T0 = Clock::now();
  auto Checker = LeakChecker::patchFrom(Prev, Src, Diags);
  if (!Checker)
    return {};
  LeakAnalysisResult R = bench::runLoop(*Checker, "hot", Checker->options());
  Analyzed A;
  A.WallMs = msSince(T0);
  A.Report = renderLeakReport(Checker->program(), R);
  A.MemoAdopted = R.Statistics.get("cfl-memo-adopted");
  A.MemoInvalidated = R.Statistics.get("cfl-memo-invalidated");
  A.Checker = std::move(Checker);
  return A;
}

double median(std::vector<double> V) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t Mid = V.size() / 2;
  return V.size() % 2 ? V[Mid] : (V[Mid - 1] + V[Mid]) / 2;
}

struct ConfigRow {
  uint32_t Jobs;
  bool Memo, Summaries;
  double ColdMs = 0, MedianEditMs = 0, MaxEditMs = 0;
  unsigned Patched = 0;
  bool ReportsIdentical = true;
  uint64_t MemoAdopted = 0, MemoInvalidated = 0;
};

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_edit_storm.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  unsigned Clusters = Quick ? 24 : 512;
  unsigned Hot = Quick ? 2 : 4;
  unsigned Edits = Quick ? 6 : 12;

  // One deterministic edit sequence shared by every config, so the same
  // revision chain is analyzed under all eight option combinations and
  // the reports can be byte-compared across the matrix.
  std::vector<unsigned> Variant(Clusters, 0);
  std::vector<std::string> Revisions;
  Revisions.push_back(makeSubject(Clusters, Hot, Variant));
  std::mt19937 Rng(0x5eed1de);
  for (unsigned E = 0; E < Edits; ++E) {
    unsigned C = Rng() % Clusters;
    Variant[C] = (Variant[C] + 1 + Rng() % 2) % 3; // always a real change
    Revisions.push_back(makeSubject(Clusters, Hot, Variant));
  }

  std::printf("Edit storm: %u clusters (%u hot), %u single-method edits, "
              "{jobs 1,4} x {memo} x {summaries}\n\n",
              Clusters, Hot, Edits);
  std::printf("%6s %6s %10s %10s %16s %10s %9s %9s\n", "jobs", "memo",
              "summaries", "cold(ms)", "median-edit(ms)", "ratio", "patched",
              "reports");

  std::vector<ConfigRow> Rows;
  // Per-edit reports from the first config: the cross-matrix reference.
  std::vector<std::string> CrossReports;
  bool CrossIdentical = true;

  for (uint32_t Jobs : {1u, 4u})
    for (bool Memo : {true, false})
      for (bool Summaries : {true, false}) {
        LeakOptions Opts;
        Opts.Jobs = Jobs;
        Opts.Cfl.Memoize = Memo;
        Opts.Summaries = Summaries;

        ConfigRow Row;
        Row.Jobs = Jobs;
        Row.Memo = Memo;
        Row.Summaries = Summaries;

        Analyzed Warm = analyzeCold(Revisions[0], Opts);
        std::vector<double> ColdMs, EditMs;
        for (unsigned E = 1; E <= Edits; ++E) {
          const std::string &Src = Revisions[E];
          Analyzed Cold = analyzeCold(Src, Opts);
          Analyzed Patched = analyzePatched(*Warm.Checker, Src);
          ColdMs.push_back(Cold.WallMs);
          if (Patched.Checker) {
            ++Row.Patched;
            EditMs.push_back(Patched.WallMs);
            Row.MemoAdopted += Patched.MemoAdopted;
            Row.MemoInvalidated += Patched.MemoInvalidated;
            if (Patched.Report != Cold.Report)
              Row.ReportsIdentical = false;
            if (Rows.empty())
              CrossReports.push_back(Patched.Report);
            else if (Patched.Report != CrossReports[E - 1])
              CrossIdentical = false;
            Warm = std::move(Patched);
          } else {
            // Not patchable: fall forward on the cold build so the storm
            // continues; the gate flags the miss via Row.Patched.
            Warm = std::move(Cold);
          }
        }
        Row.ColdMs = median(ColdMs);
        Row.MedianEditMs = median(EditMs);
        Row.MaxEditMs =
            EditMs.empty() ? 0 : *std::max_element(EditMs.begin(), EditMs.end());
        Rows.push_back(Row);
        double Ratio = Row.ColdMs > 0 ? Row.MedianEditMs / Row.ColdMs : 0;
        std::printf("%6u %6s %10s %10.2f %16.2f %9.3fx %4u/%-4u %9s\n", Jobs,
                    Memo ? "on" : "off", Summaries ? "on" : "off", Row.ColdMs,
                    Row.MedianEditMs, Ratio, Row.Patched, Edits,
                    Row.ReportsIdentical ? "identical" : "DIFFER");
      }

  std::printf("\ncross-config reports: %s\n",
              CrossIdentical ? "identical" : "DIFFER");

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"edit_storm\",\n");
  std::fprintf(Out, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(Out, "  \"heavy_subject\": {\"clusters\": %u, \"hot\": %u},\n", Clusters, Hot);
  std::fprintf(Out, "  \"edits\": %u,\n", Edits);
  std::fprintf(Out, "  \"cross_config_identical\": %s,\n",
               CrossIdentical ? "true" : "false");
  std::fprintf(Out, "  \"configs\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ConfigRow &R = Rows[I];
    std::fprintf(
        Out,
        "    {\"jobs\": %u, \"memo\": %s, \"summaries\": %s, "
        "\"cold_ms\": %.3f, \"median_edit_ms\": %.3f, \"max_edit_ms\": %.3f, "
        "\"patched\": %u, \"reports_identical\": %s, "
        "\"memo_adopted\": %llu, \"memo_invalidated\": %llu}%s\n",
        R.Jobs, R.Memo ? "true" : "false", R.Summaries ? "true" : "false",
        R.ColdMs, R.MedianEditMs, R.MaxEditMs, R.Patched,
        R.ReportsIdentical ? "true" : "false",
        static_cast<unsigned long long>(R.MemoAdopted),
        static_cast<unsigned long long>(R.MemoInvalidated),
        I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());

  bool AllPatched = true, AllIdentical = CrossIdentical;
  for (const ConfigRow &R : Rows) {
    AllPatched &= R.Patched == Edits;
    AllIdentical &= R.ReportsIdentical;
  }
  if (!AllPatched)
    std::fprintf(stderr, "warning: some edits fell back to cold rebuilds\n");
  if (!AllIdentical)
    std::fprintf(stderr,
                 "warning: patched reports diverged from cold re-analysis\n");
  return 0;
}
