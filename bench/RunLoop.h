//===-- RunLoop.h - bench shim over LeakChecker::run -----------*- C++ -*-===//
//
// Part of the LeakChecker reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-loop-one-result helper the benches share. Benches always name an
/// existing labeled loop and pass options that validate, so failures here
/// are harness bugs -- abort loudly rather than skewing a measurement.
///
//===----------------------------------------------------------------------===//

#ifndef LC_BENCH_RUNLOOP_H
#define LC_BENCH_RUNLOOP_H

#include "core/LeakChecker.h"
#include "service/Request.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lc::bench {

inline LeakAnalysisResult runLoop(const LeakChecker &LC,
                                  std::string_view Label,
                                  const LeakOptions &Opts) {
  AnalysisRequest R;
  R.Loops = LoopSet::of({std::string(Label)});
  R.Options = SessionOptionsBuilder().fromLegacy(Opts).build().value();
  AnalysisOutcome O = LC.run(R);
  if (O.Results.size() != 1) {
    std::fprintf(stderr, "bench runLoop(\"%s\"): %s %s\n",
                 std::string(Label).c_str(), outcomeStatusName(O.Status),
                 O.Diagnostics.c_str());
    std::abort();
  }
  return std::move(O.Results.front());
}

inline LeakAnalysisResult runLoop(const LeakChecker &LC, LoopId L,
                                  const LeakOptions &Opts) {
  const Program &P = LC.program();
  return runLoop(LC, P.Strings.text(P.Loops[L].Label), Opts);
}

inline LeakAnalysisResult runLoop(const LeakChecker &LC, LoopId L) {
  return runLoop(LC, L, LC.options());
}

} // namespace lc::bench

#endif // LC_BENCH_RUNLOOP_H
