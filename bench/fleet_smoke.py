#!/usr/bin/env python3
"""Smoke-test the real `leakchecker --listen` fleet front end over TCP.

Launches the CLI with an ephemeral port and a fleet event log, then
exercises the deployment surface a client actually sees:

 - a concurrent mix of analysis requests across the paper subjects plus
   control verbs, every response typed and well-formed;
 - warm routing: a repeated subject must come back substrate_origin
   "warm" (the consistent-hash ring sent it to the worker already
   holding the session);
 - typed degradation: an unknown label (loop-not-found), a malformed
   line (invalid-request), and a legacy v1 envelope (the fleet speaks
   only v2: unsupported-version, id echoed);
 - supervision: SIGKILL one worker pid (from the worker-spawn events),
   then prove the fleet still answers and logged a respawn;
 - admission control: a second, one-worker listener with
   --max-inflight 1 is blasted concurrently and must produce typed
   `overloaded` rejections while still answering the rest;
 - clean shutdown: SIGTERM exits 0.

The collected response transcript and the event log are written next to
--out so CI can validate them against the schemas
(validate_report.py --outcomes / --events).

Usage: fleet_smoke.py [--binary build/tools/leakchecker] [--out DIR]
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

SUBJECTS = ["SPECjbb2000", "EclipseDiff", "EclipseCP", "MySQL-CJ",
            "log4j", "FindBugs", "Derby", "Mckoi"]

_failures = []


def fail(msg):
    _failures.append(msg)
    print(f"fleet_smoke: FAIL: {msg}", file=sys.stderr)


def request_line(rid, subject, loops="all"):
    return json.dumps({"v": 2, "id": rid, "subject": subject,
                       "loops": loops, "options": {"jobs": 1}})


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.buf = b""

    def send(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def ask(self, line):
        self.send(line)
        return self.recv_line()

    def close(self):
        self.sock.close()


def start_listener(binary, events_path, extra_args=()):
    proc = subprocess.Popen(
        [binary, "--listen", "127.0.0.1:0", "--event-log", events_path,
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    banner = proc.stdout.readline().strip()
    try:
        doc = json.loads(banner)
    except json.JSONDecodeError:
        proc.kill()
        err = proc.stderr.read()
        sys.exit(f"fleet_smoke: no fleet-listening banner, got {banner!r} "
                 f"(stderr: {err.strip()!r})")
    if doc.get("type") != "fleet-listening" or not doc.get("port"):
        proc.kill()
        sys.exit(f"fleet_smoke: bad banner {banner!r}")
    return proc, doc["port"], banner


def status_of(line):
    try:
        doc = json.loads(line)
    except (json.JSONDecodeError, TypeError):
        return None
    return doc.get("status") if isinstance(doc, dict) else None


def main(argv):
    binary = "build/tools/leakchecker"
    outdir = "."
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--binary" and args:
            binary = args.pop(0)
        elif a == "--out" and args:
            outdir = args.pop(0)
        else:
            print(__doc__, file=sys.stderr)
            return 2
    os.makedirs(outdir, exist_ok=True)
    events_path = os.path.join(outdir, "fleet_smoke_events.jsonl")
    transcript_path = os.path.join(outdir, "fleet_smoke_outcomes.jsonl")
    transcript = []
    transcript_lock = threading.Lock()

    def record(line):
        if line is not None:
            with transcript_lock:
                transcript.append(line)

    proc, port, banner = start_listener(binary, events_path)
    print(f"fleet_smoke: listening on port {port}")

    try:
        # --- concurrent client mix: analyses + control verbs ------------
        def client_job(ci, errors):
            c = LineClient(port)
            try:
                for subject in SUBJECTS:
                    line = c.ask(request_line(f"c{ci}-{subject}", subject))
                    record(line)
                    if status_of(line) != "ok":
                        errors.append(f"client {ci} {subject}: {line!r}")
                if ci % 2 == 0:
                    line = c.ask('{"control":"health"}')
                    record(line)
                    if line is None or '"type":"fleet-health"' not in line:
                        errors.append(f"client {ci} health: {line!r}")
            finally:
                c.close()

        errors = []
        threads = [threading.Thread(target=client_job, args=(ci, errors))
                   for ci in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for e in errors[:5]:
            fail(e)
        print(f"fleet_smoke: mix OK ({8 * len(SUBJECTS)} analyses over "
              "8 concurrent connections)")

        c = LineClient(port)

        # --- warm routing: the repeat must hit a resident session -------
        warm = c.ask(request_line("warm-check", "Mckoi"))
        record(warm)
        if '"substrate_origin":"warm"' not in (warm or ""):
            fail(f"repeat of a primed subject did not run warm: {warm!r}")
        else:
            print("fleet_smoke: warm routing OK")

        # --- typed degradation ------------------------------------------
        bad_label = c.ask(json.dumps(
            {"v": 2, "id": "bad-label", "subject": "EclipseCP",
             "loops": "nosuch"}))
        record(bad_label)
        if status_of(bad_label) != "loop-not-found":
            fail(f"unknown label: {bad_label!r}")

        malformed = c.ask("this is not json")
        record(malformed)
        if status_of(malformed) != "invalid-request":
            fail(f"malformed line: {malformed!r}")

        legacy = c.ask(json.dumps(
            {"id": "legacy-v1", "subject": "Mckoi", "loops": "all"}))
        record(legacy)
        if status_of(legacy) != "unsupported-version" \
                or '"id":"legacy-v1"' not in legacy:
            fail(f"v1 envelope on the fleet: {legacy!r}")
        else:
            print("fleet_smoke: typed degradation OK "
                  "(loop-not-found, invalid-request, unsupported-version)")

        stats = c.ask('{"control":"stats"}')
        record(stats)
        if stats is None or '"type":"fleet-stats"' not in stats \
                or '"per_worker":[' not in stats:
            fail(f"fleet-stats: {stats!r}")

        # --- supervision: kill a worker, the fleet keeps answering ------
        with open(events_path) as f:
            spawns = [json.loads(l) for l in f if '"worker-spawn"' in l]
        if not spawns:
            fail("no worker-spawn events logged")
        else:
            victim = spawns[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10
            respawned = False
            while time.time() < deadline and not respawned:
                time.sleep(0.05)
                with open(events_path) as f:
                    content = f.read()
                respawned = '"worker-exit"' in content and \
                    content.count('"worker-spawn"') > len(spawns)
            if not respawned:
                fail(f"no respawn logged after killing pid {victim}")
            after = c.ask(request_line("after-kill", SUBJECTS[0]))
            record(after)
            if status_of(after) != "ok":
                fail(f"request after worker kill: {after!r}")
            else:
                print(f"fleet_smoke: supervision OK (killed pid {victim}, "
                      "slot respawned, fleet kept answering)")

        c.close()
    finally:
        # --- clean shutdown ---------------------------------------------
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            code = None
    if code != 0:
        fail(f"SIGTERM exit code {code!r} (want 0)")
    else:
        print("fleet_smoke: clean SIGTERM shutdown OK")

    # --- overload: a one-worker fleet with a tiny admission bound -------
    ov_events = os.path.join(outdir, "fleet_smoke_overload_events.jsonl")
    proc, port, _ = start_listener(binary, ov_events,
                                   ("--workers", "1", "--max-inflight", "1"))
    counts = {"ok": 0, "overloaded": 0, "other": 0}
    counts_lock = threading.Lock()
    try:
        def blast_job(ci):
            c = LineClient(port)
            try:
                for i in range(4):
                    # Distinct source per request: every one is a cold
                    # build, keeping the lone worker busy so admissions
                    # pile past the bound.
                    src = (f"class S{ci}_{i} {{ Object[] a = new Object[8]; "
                           f"int n; }}\n"
                           f"class M {{ static void main() {{\n"
                           f"  S{ci}_{i} s = new S{ci}_{i}();\n"
                           f"  int i = 0;\n"
                           f"  l: while (i < 3) {{\n"
                           f"    s.a[s.n] = new Object(); s.n = s.n + 1;\n"
                           f"    i = i + 1;\n"
                           f"  }}\n"
                           f"}} }}\n")
                    line = c.ask(json.dumps(
                        {"v": 2, "id": f"ov-{ci}-{i}", "source": src,
                         "loops": "l", "options": {"jobs": 1}}))
                    record(line)
                    st = status_of(line)
                    key = st if st in ("ok", "overloaded") else "other"
                    with counts_lock:
                        counts[key] += 1
            finally:
                c.close()

        threads = [threading.Thread(target=blast_job, args=(ci,))
                   for ci in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
    print(f"fleet_smoke: overload blast: {counts['ok']} ok, "
          f"{counts['overloaded']} overloaded, {counts['other']} other")
    if counts["overloaded"] == 0:
        fail("the blast produced no typed overloaded rejections")
    if counts["other"]:
        fail(f"{counts['other']} responses were neither ok nor overloaded")
    if counts["ok"] == 0:
        fail("the blast starved every request (nothing completed)")

    with open(transcript_path, "w") as f:
        for line in transcript:
            f.write(line + "\n")
    print(f"fleet_smoke: wrote {transcript_path} ({len(transcript)} lines) "
          f"and {events_path}")

    if _failures:
        print(f"fleet_smoke: {len(_failures)} check(s) failed",
              file=sys.stderr)
        return 1
    print("fleet_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
