//===-- fleet_throughput.cpp - sharded fleet front-end throughput -----------===//
//
// Drives an in-process FleetServer -- the same bound-socket, forked-worker,
// poll-loop front end `leakchecker --listen` runs -- with a swarm of
// concurrent TCP clients and measures what the sharding buys:
//
//  - prime leg: one client walks the eight paper subjects cold, so every
//    subject's session lands on its ring-assigned worker;
//  - hot leg: N concurrent clients (default 32, the acceptance floor)
//    replay the subjects for R rounds. Consistent-hash routing sends every
//    repeat to the worker already holding the session, so the leg runs
//    warm; per-request latency (p50/p99) and aggregate req/sec are the
//    numbers. Every response -- prime and hot -- must be byte-identical to
//    what a single-process AnalysisService answers for the same line
//    (modulo the id and the attribution object), the fleet's core
//    contract.
//  - overload leg: a fresh one-worker fleet with a tiny admission bound is
//    blasted with cold requests from many clients at once. Past the bound
//    the front end must answer typed `overloaded` rejections on a fast
//    path that touches no worker: the leg records the rejection p99 and
//    that in-flight never passed the bound.
//
// The warm-routing hit rate comes from the fleet's own stats aggregation
// ({"control":"stats"} -> per_worker[].stats.sessions): hits over
// hits+inserts across the fleet. Emits BENCH_fleet.json;
// check_regression.py --fleet gates byte-identity, the hit-rate floor,
// the overload contract, and the admission bound.
//
// Run:  ./build/bench/fleet_throughput [--quick] [--clients N] [--rounds N]
//                                      [--workers N] [--out PATH]
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetServer.h"
#include "fleet/Resolve.h"
#include "service/AnalysisService.h"
#include "service/ServiceJson.h"
#include "subjects/Subjects.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lc;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

/// A blocking line-oriented TCP client (one connection).
struct Client {
  int Fd = -1;
  std::string Buf;

  bool connectTo(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in A{};
    A.sin_family = AF_INET;
    A.sin_port = htons(Port);
    inet_pton(AF_INET, "127.0.0.1", &A.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) != 0) {
      ::close(Fd);
      Fd = -1;
      return false;
    }
    return true;
  }
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool send(const std::string &Line) {
    std::string Wire = Line + "\n";
    size_t Off = 0;
    while (Off < Wire.size()) {
      ssize_t N = ::write(Fd, Wire.data() + Off, Wire.size() - Off);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  std::string recvLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      char Chunk[8192];
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return std::string();
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }
};

/// Drops the attribution object (wall times differ run to run) and the
/// per-request id, leaving exactly the bytes the analysis decided.
std::string normalize(std::string Line) {
  size_t At = Line.rfind(",\"observability\":{");
  if (At != std::string::npos && Line.back() == '}')
    Line.erase(At, Line.size() - At - 1);
  size_t IdAt = Line.find("\"id\":\"");
  if (IdAt != std::string::npos) {
    size_t End = Line.find('"', IdAt + 6);
    if (End != std::string::npos)
      Line.erase(IdAt + 6, End - (IdAt + 6));
  }
  return Line;
}

std::string subjectRequest(const std::string &Id,
                           const std::string &Subject) {
  return "{\"v\":2,\"id\":" + json::quote(Id) +
         ",\"subject\":" + json::quote(Subject) +
         ",\"loops\":\"all\",\"options\":{\"jobs\":1}}";
}

/// A distinct throwaway program per index: every overload-leg request is
/// a cold build, keeping the single worker busy so admissions pile up.
std::string coldRequest(const std::string &Id, unsigned Tag) {
  std::string Src = "class Sink" + std::to_string(Tag) +
                    " { Object[] all = new Object[16]; int n; }\n"
                    "class Main { static void main() {\n"
                    "  Sink" + std::to_string(Tag) + " s = new Sink" +
                    std::to_string(Tag) + "();\n"
                    "  int i = 0;\n"
                    "  l: while (i < 4) {\n"
                    "    s.all[s.n] = new Object(); s.n = s.n + 1;\n"
                    "    i = i + 1;\n"
                    "  }\n"
                    "} }\n";
  return "{\"v\":2,\"id\":" + json::quote(Id) +
         ",\"source\":" + json::quote(Src) +
         ",\"loops\":\"l\",\"options\":{\"jobs\":1}}";
}

/// What one single-process service answers for \p Line, normalized.
std::string referenceOutcome(AnalysisService &Svc, const std::string &Line) {
  json::Value Doc;
  std::string Error;
  if (!json::parse(Line, Doc, Error)) {
    std::fprintf(stderr, "reference parse: %s\n", Error.c_str());
    std::abort();
  }
  AnalysisRequest R;
  RequestSourceRef Ref;
  if (!parseAnalysisRequest(Doc, R, Ref, Error) ||
      !resolveRequestSource(Ref, R, Error)) {
    std::fprintf(stderr, "reference request: %s\n", Error.c_str());
    std::abort();
  }
  return normalize(renderOutcomeJson(Svc.run(R)));
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

struct FleetRun {
  FleetServer Server;
  std::thread Loop;

  explicit FleetRun(FleetOptions FO) : Server(std::move(FO)) {
    std::string Error;
    if (!Server.start(Error)) {
      std::fprintf(stderr, "fleet start: %s\n", Error.c_str());
      std::exit(1);
    }
    Loop = std::thread([this] { Server.runLoop(); });
  }
  ~FleetRun() {
    Server.stop();
    Loop.join();
  }
};

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  unsigned Clients = 32; // the acceptance floor; do not lower in --quick
  unsigned Rounds = 0;
  unsigned Workers = 3;
  std::string OutPath = "BENCH_fleet.json";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--clients") && I + 1 < argc)
      Clients = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--rounds") && I + 1 < argc)
      Rounds = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--clients N] [--rounds N] "
                   "[--workers N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Rounds == 0)
    Rounds = Quick ? 2 : 6;

  const std::vector<subjects::Subject> &Subjects = subjects::all();
  std::printf("Fleet throughput: %u workers, %u clients x %u rounds over "
              "%zu subjects\n\n",
              Workers, Clients, Rounds, Subjects.size());

  // Reference answers from one in-process service: first run per subject
  // is the cold (substrate built) answer, the repeat is the warm one.
  // The fleet's prime leg must match the former, the hot leg the latter.
  std::vector<std::string> RefCold, RefWarm, Requests;
  {
    ServiceOptions SO;
    SO.Attribution = false;
    AnalysisService Ref(SO);
    for (const subjects::Subject &S : Subjects) {
      std::string Line = subjectRequest("ref", S.Name);
      Requests.push_back(Line);
      RefCold.push_back(referenceOutcome(Ref, Line));
      RefWarm.push_back(referenceOutcome(Ref, Line));
    }
  }

  FleetOptions FO;
  FO.Workers = Workers;
  std::atomic<bool> ByteIdentical{true};
  std::atomic<unsigned> Failures{0};
  double PrimeMs = 0, HotMs = 0;
  std::vector<double> HotLat;
  uint64_t Admitted = 0, Completed = 0, Rejected = 0, PeakInflight = 0;
  uint64_t SessionHits = 0, SessionInserts = 0;
  {
    FleetRun Fleet(FO);

    // --- prime: every subject lands on its ring-assigned worker ----------
    Clock::time_point T0 = Clock::now();
    {
      Client C;
      if (!C.connectTo(Fleet.Server.port())) {
        std::fprintf(stderr, "prime connect failed\n");
        return 1;
      }
      for (size_t I = 0; I < Subjects.size(); ++I) {
        C.send(Requests[I]);
        std::string Got = normalize(C.recvLine());
        if (Got != RefCold[I]) {
          std::fprintf(stderr, "prime %s diverges from single-process\n",
                       Subjects[I].Name);
          ByteIdentical = false;
        }
      }
    }
    PrimeMs = msSince(T0);

    // --- hot: concurrent clients replay the subjects, all warm -----------
    std::vector<std::vector<double>> Lat(Clients);
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    T0 = Clock::now();
    for (unsigned Ci = 0; Ci < Clients; ++Ci)
      Threads.emplace_back([&, Ci] {
        Client C;
        if (!C.connectTo(Fleet.Server.port())) {
          Failures++;
          return;
        }
        for (unsigned R = 0; R < Rounds; ++R)
          for (size_t I = 0; I < Subjects.size(); ++I) {
            std::string Id = "c" + std::to_string(Ci) + "-r" +
                             std::to_string(R) + "-" + Subjects[I].Name;
            std::string Line = subjectRequest(Id, Subjects[I].Name);
            Clock::time_point S0 = Clock::now();
            if (!C.send(Line)) {
              Failures++;
              return;
            }
            std::string Got = C.recvLine();
            if (Got.empty()) {
              Failures++;
              return;
            }
            Lat[Ci].push_back(msSince(S0));
            if (normalize(Got) != RefWarm[I])
              ByteIdentical = false;
          }
      });
    for (std::thread &T : Threads)
      T.join();
    HotMs = msSince(T0);
    for (std::vector<double> &L : Lat)
      HotLat.insert(HotLat.end(), L.begin(), L.end());

    // --- warm-routing hit rate from the fleet's own aggregation ----------
    {
      Client C;
      if (C.connectTo(Fleet.Server.port())) {
        C.send("{\"control\":\"stats\"}");
        std::string Stats = C.recvLine();
        json::Value Doc;
        std::string Error;
        if (json::parse(Stats, Doc, Error)) {
          if (const json::Value *PW = Doc.get("per_worker");
              PW && PW->isArray())
            for (const json::Value &W : PW->items())
              if (const json::Value *St = W.get("stats"); St && St->isObject())
                if (const json::Value *Se = St->get("sessions");
                    Se && Se->isObject()) {
                  SessionHits += static_cast<uint64_t>(
                      Se->get("hits") ? Se->get("hits")->asInt() : 0);
                  SessionInserts += static_cast<uint64_t>(
                      Se->get("inserts") ? Se->get("inserts")->asInt() : 0);
                }
        }
      }
    }
    const FleetServer::Counters &S = Fleet.Server.counters();
    Admitted = S.Admitted;
    Completed = S.Completed;
    Rejected = S.Rejected;
    PeakInflight = S.PeakInflight;
  }

  size_t HotRequests = static_cast<size_t>(Clients) * Rounds * Subjects.size();
  std::sort(HotLat.begin(), HotLat.end());
  double HotP50 = percentile(HotLat, 0.50);
  double HotP99 = percentile(HotLat, 0.99);
  double HotRps = HotMs > 0 ? HotRequests / (HotMs / 1e3) : 0.0;
  double HitRate = (SessionHits + SessionInserts) > 0
                       ? double(SessionHits) / (SessionHits + SessionInserts)
                       : 0.0;

  std::printf("%8s %10s %12s %12s %12s %12s\n", "leg", "requests", "wall(ms)",
              "req/sec", "p50(ms)", "p99(ms)");
  std::printf("%8s %10zu %12.2f %12s %12s %12s\n", "prime", Subjects.size(),
              PrimeMs, "-", "-", "-");
  std::printf("%8s %10zu %12.2f %12.1f %12.3f %12.3f\n", "hot", HotRequests,
              HotMs, HotRps, HotP50, HotP99);
  std::printf("\nwarm routing: %llu session hits, %llu inserts "
              "(hit rate %.1f%%)\n",
              static_cast<unsigned long long>(SessionHits),
              static_cast<unsigned long long>(SessionInserts),
              HitRate * 100.0);
  std::printf("admission: %llu admitted, %llu completed, %llu rejected, "
              "peak in-flight %llu\n",
              static_cast<unsigned long long>(Admitted),
              static_cast<unsigned long long>(Completed),
              static_cast<unsigned long long>(Rejected),
              static_cast<unsigned long long>(PeakInflight));

  // --- overload: a tiny admission bound under a cold-request blast --------
  FleetOptions OvFO;
  OvFO.Workers = 1;
  OvFO.MaxInflight = 2;
  unsigned OvClients = Quick ? 8 : 16;
  unsigned OvPerClient = 4;
  std::atomic<uint64_t> OvOk{0}, OvRejected{0}, OvOther{0};
  std::vector<std::vector<double>> OvRejLat(OvClients);
  uint64_t OvPeak = 0;
  double OvMs = 0;
  {
    FleetRun Fleet(OvFO);
    std::vector<std::thread> Threads;
    Threads.reserve(OvClients);
    Clock::time_point T0 = Clock::now();
    for (unsigned Ci = 0; Ci < OvClients; ++Ci)
      Threads.emplace_back([&, Ci] {
        Client C;
        if (!C.connectTo(Fleet.Server.port())) {
          OvOther++;
          return;
        }
        for (unsigned I = 0; I < OvPerClient; ++I) {
          std::string Id = "ov-c" + std::to_string(Ci) + "-" +
                           std::to_string(I);
          Clock::time_point S0 = Clock::now();
          if (!C.send(coldRequest(Id, Ci * 100 + I))) {
            OvOther++;
            return;
          }
          std::string Got = C.recvLine();
          double Ms = msSince(S0);
          if (Got.find("\"status\":\"ok\"") != std::string::npos) {
            OvOk++;
          } else if (Got.find("\"status\":\"overloaded\"") !=
                     std::string::npos) {
            OvRejected++;
            OvRejLat[Ci].push_back(Ms);
          } else {
            OvOther++;
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();
    OvMs = msSince(T0);
    OvPeak = Fleet.Server.counters().PeakInflight;
  }
  std::vector<double> RejLat;
  for (std::vector<double> &L : OvRejLat)
    RejLat.insert(RejLat.end(), L.begin(), L.end());
  std::sort(RejLat.begin(), RejLat.end());
  double RejP50 = percentile(RejLat, 0.50);
  double RejP99 = percentile(RejLat, 0.99);
  uint64_t OvSent = static_cast<uint64_t>(OvClients) * OvPerClient;

  std::printf("\noverload (1 worker, max in-flight %zu, %u clients x %u "
              "cold requests):\n",
              OvFO.MaxInflight, OvClients, OvPerClient);
  std::printf("  %llu ok, %llu overloaded, %llu other in %.2f ms; "
              "reject p50 %.3f ms, p99 %.3f ms; peak in-flight %llu\n",
              static_cast<unsigned long long>(OvOk.load()),
              static_cast<unsigned long long>(OvRejected.load()),
              static_cast<unsigned long long>(OvOther.load()), OvMs, RejP50,
              RejP99, static_cast<unsigned long long>(OvPeak));

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"fleet_throughput\",\n");
  std::fprintf(Out, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(Out, "  \"workers\": %u,\n  \"clients\": %u,\n", Workers,
               Clients);
  std::fprintf(Out, "  \"rounds\": %u,\n  \"subjects\": %zu,\n", Rounds,
               Subjects.size());
  std::fprintf(Out, "  \"byte_identical\": %s,\n",
               ByteIdentical.load() ? "true" : "false");
  std::fprintf(Out, "  \"client_failures\": %u,\n", Failures.load());
  std::fprintf(Out, "  \"prime_wall_ms\": %.3f,\n", PrimeMs);
  std::fprintf(Out, "  \"hot_requests\": %zu,\n", HotRequests);
  std::fprintf(Out, "  \"hot_wall_ms\": %.3f,\n  \"hot_rps\": %.3f,\n", HotMs,
               HotRps);
  std::fprintf(Out, "  \"hot_p50_ms\": %.3f,\n  \"hot_p99_ms\": %.3f,\n",
               HotP50, HotP99);
  std::fprintf(Out, "  \"warm_hit_rate\": %.4f,\n", HitRate);
  std::fprintf(Out,
               "  \"session_hits\": %llu,\n  \"session_inserts\": %llu,\n",
               static_cast<unsigned long long>(SessionHits),
               static_cast<unsigned long long>(SessionInserts));
  std::fprintf(Out, "  \"admitted\": %llu,\n  \"completed\": %llu,\n",
               static_cast<unsigned long long>(Admitted),
               static_cast<unsigned long long>(Completed));
  std::fprintf(Out, "  \"rejected\": %llu,\n",
               static_cast<unsigned long long>(Rejected));
  std::fprintf(Out, "  \"peak_inflight\": %llu,\n",
               static_cast<unsigned long long>(PeakInflight));
  std::fprintf(Out, "  \"max_inflight\": %zu,\n", FO.MaxInflight);
  std::fprintf(Out, "  \"overload\": {\n");
  std::fprintf(Out, "    \"workers\": %zu,\n    \"max_inflight\": %zu,\n",
               OvFO.Workers, OvFO.MaxInflight);
  std::fprintf(Out, "    \"clients\": %u,\n    \"sent\": %llu,\n", OvClients,
               static_cast<unsigned long long>(OvSent));
  std::fprintf(Out, "    \"ok\": %llu,\n    \"rejected\": %llu,\n",
               static_cast<unsigned long long>(OvOk.load()),
               static_cast<unsigned long long>(OvRejected.load()));
  std::fprintf(Out, "    \"other\": %llu,\n",
               static_cast<unsigned long long>(OvOther.load()));
  std::fprintf(Out,
               "    \"reject_p50_ms\": %.3f,\n    \"reject_p99_ms\": %.3f,\n",
               RejP50, RejP99);
  std::fprintf(Out, "    \"peak_inflight\": %llu\n  }\n}\n",
               static_cast<unsigned long long>(OvPeak));
  std::fclose(Out);
  std::printf("\nwrote %s\n", OutPath.c_str());
  return 0;
}
