#!/usr/bin/env python3
"""Gate on the perf benches: fail CI when wall time regresses by more than
25% against the checked-in baseline, or (Andersen mode) when the solver's
answer changes at all.

Usage: check_regression.py BENCH_scalability.json [baseline.json]
       check_regression.py --andersen BENCH_andersen.json [baseline.json]
       check_regression.py --edits BENCH_edit_storm.json
       check_regression.py --service BENCH_service.json
       check_regression.py --fleet BENCH_fleet.json

All metric gates are evaluated before the script exits: a failing run
prints one `FAIL <metric>: baseline ..., observed ..., ratio ...` line
per offending metric and exits 1 at the end, so a CI log shows the whole
regression surface at once instead of just the first tripwire. Only
structural errors (missing file, missing section) still abort
immediately.

With --allocs the scalability run's memory section is gated too: the
heap-allocation count of the cold single-thread heavy-subject check (an
exact counter from lc_alloc_hook, immune to timer noise) and the peak
RSS must each stay within 1.25x of the baseline. Allocation counts are
the leading indicator the memory-engineering work optimizes for -- a
regression there shows up long before wall time moves.

With --summaries the scalability run must also carry a summary_ablation
section proving the method-summary pass earns its keep: at the largest
sweep size, cfl-states-visited with summaries must be at most 0.7x the
no-summaries run, and the rendered reports must be byte-identical at
every size (any diff means composition is not exact and fails hard).

The quick-mode subject finishes in well under a millisecond, where timer
and scheduler noise dwarfs any 25% band, so the relative check carries an
absolute grace (default 5 ms, override with --grace-ms): a run only fails
when it exceeds baseline * 1.25 + grace. A real regression (an accidental
quadratic walk, a lock on the query path) blows far past that; noise does
not.

Also sanity-checks the run itself: the jobs sweep must exist, the
single-thread run must have visited states and issued queries, and the
states-visited totals must agree across job counts (the engine's
determinism contract).

Andersen mode reads the wave-propagation sweep (BENCH_andersen.json).
Time is checked with the same 1.25x + grace band on each sweep size the
run and baseline share (a --quick run only covers the small sizes). The
points-to cardinality fingerprints (var_pts_total / field_pts_total) are
exact: ANY difference from the baseline fails, because the workload is
deterministic and a changed total means the solver computes a different
fixed point. The wave solver must also still beat the naive reference by
at least 2x at the largest shared size.

Service mode reads the service-throughput run (BENCH_service.json, no
baseline: the gate is self-relative). The observability leg -- the same
warm request stream with per-request attribution, a flushed-per-event
structured log, and periodic snapshot dumps -- must cost at most 3% over
the attribution-off warm leg, measured over the hot rounds only (every
session already resident in both legs, so substrate-build noise cannot
swamp the band): obs_hot_wall_ms <= warm_hot_wall_ms * 1.03 + grace; the
default 5 ms grace absorbs --quick timer noise where a 3% band is
sub-millisecond. Outcomes must be byte-identical with observability on
(obs_byte_identical), and the leg must actually have streamed events.

Fleet mode reads the sharded front-end run (BENCH_fleet.json, no
baseline: the gates are structural). The fleet is only allowed to change
the bill, never the answer: every response across >= 32 concurrent
connections must have byte-compared identical to a single-process
service (byte_identical), with no client-side failures. Consistent-hash
routing must actually deliver warmth -- the fleet-wide session hit rate
over the hot leg must clear 0.9 (one insert per subject per owning
worker, everything else a hit; a broken ring scatters repeats and
rebuilds sessions instead). Admission control must hold: everything
admitted completes, peak in-flight never passes the bound in either leg,
and the overload leg must both see typed `overloaded` rejections (> 0,
with nothing unaccounted) and answer them fast -- rejection is a
front-end-only path, so its p99 is gated at 50 ms + grace even while
every worker is busy.

Edits mode reads the incremental re-analysis storm (BENCH_edit_storm.json,
no baseline: the gate is self-relative). For every config in the
{jobs} x {memo} x {summaries} matrix, the median incremental (patched)
re-analysis must cost at most 0.25x of a cold from-scratch analysis of
the same edited source (plus a 1 ms timer grace -- this mode defaults
lower than the others because --quick medians are sub-millisecond and a
5 ms grace would swallow the whole budget), every edit must have been
served by the patch path rather than a cold fallback, and the patched
report must be byte-identical to the cold report at every edit --
incremental reuse is only allowed to change the bill, never the answer.
"""

import json
import sys

# One entry per failed metric gate; printed and counted at exit so a run
# reports every offending metric, not just the first.
_failures = []


def die(msg):
    """Structural failure (missing file/section): abort immediately."""
    print(f"check_regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fail_metric(metric, baseline, observed, limit=None, note=""):
    """Record one offending metric: baseline vs observed plus their ratio."""
    try:
        b = float(baseline)
        ratio = f"{float(observed) / b:.3f}x" if b else "inf"
    except (TypeError, ValueError):
        ratio = "n/a"
    line = f"{metric}: baseline {baseline}, observed {observed}, ratio {ratio}"
    if limit is not None:
        line += f", limit {limit}"
    if note:
        line += f" ({note})"
    _failures.append(line)
    print(f"check_regression: FAIL {line}", file=sys.stderr)


def finish():
    """Exit status for the whole run: 1 if any metric gate failed."""
    if _failures:
        print(f"check_regression: {len(_failures)} metric gate(s) failed",
              file=sys.stderr)
        return 1
    print("check_regression: all gates passed")
    return 0


def check_andersen(run_path, base_path, grace_ms):
    with open(run_path) as f:
        run = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    sweep = run.get("sweep") or die("sweep missing or empty")
    base_rows = {r["n"]: r for r in base.get("sweep", [])}
    shared = [r for r in sweep if r["n"] in base_rows]
    if not shared:
        die(f"no sweep sizes shared with baseline {base_path}")

    for row in shared:
        n = row["n"]
        ref = base_rows[n]
        for key in ("var_pts_total", "field_pts_total"):
            if row.get(key) != ref.get(key):
                fail_metric(f"andersen n={n} {key}", ref.get(key),
                            row.get(key), note="the solver's answer changed")
        wave = float(row["wave_ms"])
        base_wave = float(ref["wave_ms"])
        limit = base_wave * 1.25 + grace_ms
        verdict = "OK" if wave <= limit else "FAIL"
        print(f"check_regression: andersen n={n} wave {wave:.3f} ms, "
              f"baseline {base_wave:.3f} ms, limit {limit:.3f} ms: {verdict}")
        if wave > limit:
            fail_metric(f"andersen n={n} wave_ms", f"{base_wave:.3f}",
                        f"{wave:.3f}", f"{limit:.3f} (1.25x + grace)")

    largest = max(shared, key=lambda r: r["n"])
    speedup = float(largest["speedup"])
    print(f"check_regression: andersen n={largest['n']} speedup over naive "
          f"{speedup:.2f}x (need >= 2.0)")
    if speedup < 2.0:
        fail_metric(f"andersen n={largest['n']} speedup-over-naive", "2.0",
                    f"{speedup:.2f}",
                    note="wave solver no longer >= 2x the naive reference")

    refine = run.get("refine")
    if refine:
        frac = float(refine.get("round2plus_max_fraction", 0.0))
        print(f"check_regression: andersen refine n={refine.get('n')} "
              f"rounds={refine.get('rounds')} "
              f"round2plus_max_fraction={frac:.3f}, "
              f"incremental_solves={refine.get('incremental_solves')}")
        if refine.get("incremental_solves", 0) <= 0:
            fail_metric("andersen refine incremental_solves", "> 0",
                        refine.get("incremental_solves"),
                        note="the re-solve path fell back to scratch")
    return finish()


def check_edits(run_path, grace_ms):
    with open(run_path) as f:
        run = json.load(f)
    configs = run.get("configs") or die("--edits: configs missing or empty")
    edits = int(run.get("edits", 0))
    if edits <= 0:
        die("--edits: run applied no edits")
    for c in configs:
        tag = (f"jobs={c.get('jobs')} memo={'on' if c.get('memo') else 'off'} "
               f"summaries={'on' if c.get('summaries') else 'off'}")
        cold = float(c["cold_ms"])
        med = float(c["median_edit_ms"])
        if cold <= 0:
            die(f"--edits: {tag}: cold_ms is zero")
        limit = cold * 0.25 + grace_ms
        ratio = med / cold
        verdict = "OK" if med <= limit else "FAIL"
        print(f"check_regression: edit-storm {tag}: median edit {med:.3f} ms "
              f"vs cold {cold:.3f} ms (ratio {ratio:.3f}, limit "
              f"{limit:.3f} ms = 0.25x + {grace_ms:g} ms grace): {verdict}")
        if med > limit:
            fail_metric(f"edit-storm median_edit_ms ({tag})", f"{cold:.3f}",
                        f"{med:.3f}", f"{limit:.3f} (0.25x cold + grace)",
                        note="incremental re-analysis lost its edge")
        if not c.get("reports_identical", False):
            fail_metric(f"edit-storm reports_identical ({tag})", True,
                        c.get("reports_identical", False),
                        note="patched report diverged from cold re-analysis")
        if int(c.get("patched", 0)) != edits:
            fail_metric(f"edit-storm patched edits ({tag})", edits,
                        c.get("patched", 0),
                        note="some edits fell back to a cold rebuild")
    if not run.get("cross_config_identical", True):
        fail_metric("edit-storm cross_config_identical", True, False,
                    note="reports differ across the jobs/memo/summaries "
                         "matrix for the same edited source")
    return finish()


def check_service(run_path, grace_ms):
    with open(run_path) as f:
        run = json.load(f)
    warm = float(run.get("warm_hot_wall_ms", 0))
    obs = float(run.get("obs_hot_wall_ms", 0))
    if warm <= 0:
        die("--service: warm_hot_wall_ms missing or zero")
    if obs <= 0:
        die("--service: obs_hot_wall_ms missing or zero (observability leg "
            "did not run)")
    limit = warm * 1.03 + grace_ms
    ratio = obs / warm
    verdict = "OK" if obs <= limit else "FAIL"
    print(f"check_regression: service observability leg (hot rounds) "
          f"{obs:.3f} ms vs warm {warm:.3f} ms (ratio {ratio:.3f}, limit "
          f"{limit:.3f} ms = 1.03x + {grace_ms:g} ms grace): {verdict}")
    if obs > limit:
        fail_metric("service obs_hot_wall_ms", f"{warm:.3f}", f"{obs:.3f}",
                    f"{limit:.3f} (1.03x warm + grace)",
                    note="the observability plane costs more than 3%")
    if not run.get("obs_byte_identical", False):
        fail_metric("service obs_byte_identical", True,
                    run.get("obs_byte_identical", False),
                    note="attribution changed an analysis answer")
    events = int(run.get("events_emitted", 0))
    requests = int(run.get("requests", 0))
    # Every request logs at least received + admitted + terminal.
    if events < requests * 3:
        fail_metric("service events_emitted", f">= {requests * 3}", events,
                    note="the event log missed request events")
    return finish()


def check_fleet(run_path, grace_ms):
    with open(run_path) as f:
        run = json.load(f)
    if not run.get("byte_identical", False):
        fail_metric("fleet byte_identical", True,
                    run.get("byte_identical", False),
                    note="a fleet response diverged from the "
                         "single-process service")
    failures = int(run.get("client_failures", 0))
    if failures:
        fail_metric("fleet client_failures", 0, failures,
                    note="clients lost their connection or got no answer")
    clients = int(run.get("clients", 0))
    print(f"check_regression: fleet {clients} concurrent clients, "
          f"{run.get('hot_requests', 0)} hot requests at "
          f"{float(run.get('hot_rps', 0)):.0f} req/s "
          f"(p50 {float(run.get('hot_p50_ms', 0)):.3f} ms, "
          f"p99 {float(run.get('hot_p99_ms', 0)):.3f} ms)")
    if clients < 32:
        fail_metric("fleet clients", ">= 32", clients,
                    note="the run covered fewer concurrent connections "
                         "than the acceptance floor")
    rate = float(run.get("warm_hit_rate", 0.0))
    verdict = "OK" if rate >= 0.9 else "FAIL"
    print(f"check_regression: fleet warm hit rate {rate:.1%} "
          f"({run.get('session_hits', 0)} hits, "
          f"{run.get('session_inserts', 0)} inserts; need >= 90%): {verdict}")
    if rate < 0.9:
        fail_metric("fleet warm_hit_rate", ">= 0.9", f"{rate:.4f}",
                    note="repeats are not reaching the worker that "
                         "holds their session")
    admitted = int(run.get("admitted", 0))
    completed = int(run.get("completed", 0))
    if admitted <= 0:
        die("--fleet: run admitted no requests")
    if completed != admitted:
        fail_metric("fleet completed", admitted, completed,
                    note="admitted requests went unanswered")
    peak = int(run.get("peak_inflight", 0))
    bound = int(run.get("max_inflight", 0))
    if peak > bound:
        fail_metric("fleet peak_inflight", f"<= {bound}", peak,
                    note="admission control failed to bound the queue")
    ov = run.get("overload") or die("--fleet: overload leg missing")
    sent = int(ov.get("sent", 0))
    ok = int(ov.get("ok", 0))
    rejected = int(ov.get("rejected", 0))
    other = int(ov.get("other", 0))
    print(f"check_regression: fleet overload {sent} sent -> {ok} ok, "
          f"{rejected} overloaded, {other} other; reject p99 "
          f"{float(ov.get('reject_p99_ms', 0)):.3f} ms, peak in-flight "
          f"{ov.get('peak_inflight', 0)} (bound {ov.get('max_inflight', 0)})")
    if rejected <= 0:
        fail_metric("fleet overload rejected", "> 0", rejected,
                    note="the blast never tripped admission control")
    if other or ok + rejected + other != sent:
        fail_metric("fleet overload accounting", sent,
                    f"{ok} ok + {rejected} rejected + {other} other",
                    note="responses went missing or came back untyped")
    if int(ov.get("peak_inflight", 0)) > int(ov.get("max_inflight", 0)):
        fail_metric("fleet overload peak_inflight",
                    f"<= {ov.get('max_inflight', 0)}",
                    ov.get("peak_inflight", 0),
                    note="the bound did not hold under the blast")
    rej_p99 = float(ov.get("reject_p99_ms", 0.0))
    limit = 50.0 + grace_ms
    verdict = "OK" if rej_p99 <= limit else "FAIL"
    print(f"check_regression: fleet reject p99 {rej_p99:.3f} ms, limit "
          f"{limit:.3f} ms (50 ms + {grace_ms:g} ms grace): {verdict}")
    if rej_p99 > limit:
        fail_metric("fleet overload reject_p99_ms", "50.0", f"{rej_p99:.3f}",
                    f"{limit:.3f} (50 ms + grace)",
                    note="rejections are queuing behind analysis work")
    return finish()


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    grace_ms = None
    andersen = "--andersen" in argv[1:]
    summaries = "--summaries" in argv[1:]
    allocs = "--allocs" in argv[1:]
    edits = "--edits" in argv[1:]
    service = "--service" in argv[1:]
    fleet = "--fleet" in argv[1:]
    for a in argv[1:]:
        if a.startswith("--grace-ms="):
            grace_ms = float(a.split("=", 1)[1])
    if grace_ms is None:
        # The edit-storm medians are sub-millisecond in --quick runs, so a
        # 5 ms grace would swallow the whole 0.25x budget there; 1 ms only
        # absorbs timer jitter.
        grace_ms = 1.0 if edits else 5.0
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    run_path = args[0]
    if andersen:
        base_path = args[1] if len(args) > 1 else "bench/andersen_baseline.json"
        return check_andersen(run_path, base_path, grace_ms)
    if edits:
        return check_edits(run_path, grace_ms)
    if service:
        return check_service(run_path, grace_ms)
    if fleet:
        return check_fleet(run_path, grace_ms)
    base_path = args[1] if len(args) > 1 else "bench/scalability_baseline.json"

    with open(run_path) as f:
        run = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    sweep = run.get("jobs_sweep") or die("jobs_sweep missing or empty")
    single = next((r for r in sweep if r.get("jobs") == 1), None)
    if single is None:
        die("no jobs=1 entry in jobs_sweep")
    if single.get("states_visited", 0) <= 0:
        fail_metric("jobs=1 states_visited", "> 0",
                    single.get("states_visited", 0),
                    note="queries not running?")

    states = {r["states_visited"] for r in sweep}
    if len(states) != 1:
        fail_metric("states_visited across job counts", "one total",
                    sorted(states),
                    note="deterministic accounting is broken")

    base_single = next(
        (r for r in base.get("jobs_sweep", []) if r.get("jobs") == 1), None)
    if base_single is None:
        die(f"no jobs=1 entry in baseline {base_path}")

    wall = float(single["wall_ms"])
    base_wall = float(base_single["wall_ms"])
    limit = base_wall * 1.25 + grace_ms
    verdict = "OK" if wall <= limit else "FAIL"
    print(f"check_regression: single-thread wall {wall:.3f} ms, "
          f"baseline {base_wall:.3f} ms, limit {limit:.3f} ms "
          f"(1.25x + {grace_ms:g} ms grace): {verdict}")
    if wall > limit:
        fail_metric("single-thread wall_ms", f"{base_wall:.3f}",
                    f"{wall:.3f}", f"{limit:.3f} (1.25x + grace)")

    memo = run.get("memo_ablation", {})
    rate = memo.get("cache_hit_rate", 0.0)
    print(f"check_regression: memo cache hit rate {rate:.1%}, "
          f"single-thread improvement "
          f"{memo.get('single_thread_improvement', 0):.2f}x")

    if allocs:
        check_allocs(run, base)
    if summaries:
        check_summaries(run)
    return finish()


def check_allocs(run, base):
    mem = run.get("memory") or die("--allocs: run has no memory section")
    ref = base.get("memory") or die(
        "--allocs: baseline has no memory section (regenerate it from a "
        "build that links lc_alloc_hook)")
    if not mem.get("alloc_hook", False):
        die("--allocs: run counted no allocations (lc_alloc_hook not "
            "linked into the bench)")
    if ref.get("alloc_hook", False):
        n = int(mem["heap_allocs"])
        base_n = int(ref["heap_allocs"])
        limit = base_n * 1.25
        verdict = "OK" if n <= limit else "FAIL"
        print(f"check_regression: heap allocations {n}, baseline {base_n}, "
              f"limit {limit:.0f} (1.25x): {verdict}")
        if n > limit:
            fail_metric("heap_allocs", base_n, n, f"{limit:.0f} (1.25x)")
    # Peak RSS is page-granular and process-wide, so give it a small
    # absolute grace on top of the relative band.
    rss = int(mem["peak_rss_kb"])
    base_rss = int(ref["peak_rss_kb"])
    rss_limit = base_rss * 1.25 + 512
    verdict = "OK" if rss <= rss_limit else "FAIL"
    print(f"check_regression: peak RSS {rss} KiB, baseline {base_rss} KiB, "
          f"limit {rss_limit:.0f} KiB (1.25x + 512): {verdict}")
    if rss > rss_limit:
        fail_metric("peak_rss_kb", base_rss, rss,
                    f"{rss_limit:.0f} (1.25x + 512)")


def check_summaries(run):
    rows = run.get("summary_ablation") or die(
        "--summaries: summary_ablation missing or empty")
    for row in rows:
        if not row.get("reports_identical", False):
            fail_metric(
                f"summary ablation reports at {row.get('clusters')} clusters",
                True, row.get("reports_identical", False),
                note="reports differ with summaries on vs off -- "
                     "composition is not exact")
    largest = max(rows, key=lambda r: r.get("clusters", 0))
    on = largest.get("states_on", 0)
    off = largest.get("states_off", 0)
    if off <= 0:
        die("--summaries: no-summaries run visited no CFL states")
    ratio = on / off
    verdict = "OK" if ratio <= 0.7 else "FAIL"
    print(f"check_regression: summary ablation at {largest['clusters']} "
          f"clusters: states {on} vs {off} (ratio {ratio:.3f}, "
          f"need <= 0.7): {verdict}")
    if ratio > 0.7:
        fail_metric(
            f"summary ablation states ratio at {largest['clusters']} "
            "clusters", off, on, "0.7x",
            note="method summaries save too little")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
