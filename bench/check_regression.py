#!/usr/bin/env python3
"""Gate on the perf benches: fail CI when wall time regresses by more than
25% against the checked-in baseline, or (Andersen mode) when the solver's
answer changes at all.

Usage: check_regression.py BENCH_scalability.json [baseline.json]
       check_regression.py --andersen BENCH_andersen.json [baseline.json]

With --allocs the scalability run's memory section is gated too: the
heap-allocation count of the cold single-thread heavy-subject check (an
exact counter from lc_alloc_hook, immune to timer noise) and the peak
RSS must each stay within 1.25x of the baseline. Allocation counts are
the leading indicator the memory-engineering work optimizes for -- a
regression there shows up long before wall time moves.

With --summaries the scalability run must also carry a summary_ablation
section proving the method-summary pass earns its keep: at the largest
sweep size, cfl-states-visited with summaries must be at most 0.7x the
no-summaries run, and the rendered reports must be byte-identical at
every size (any diff means composition is not exact and fails hard).

The quick-mode subject finishes in well under a millisecond, where timer
and scheduler noise dwarfs any 25% band, so the relative check carries an
absolute grace (default 5 ms, override with --grace-ms): a run only fails
when it exceeds baseline * 1.25 + grace. A real regression (an accidental
quadratic walk, a lock on the query path) blows far past that; noise does
not.

Also sanity-checks the run itself: the jobs sweep must exist, the
single-thread run must have visited states and issued queries, and the
states-visited totals must agree across job counts (the engine's
determinism contract).

Andersen mode reads the wave-propagation sweep (BENCH_andersen.json).
Time is checked with the same 1.25x + grace band on each sweep size the
run and baseline share (a --quick run only covers the small sizes). The
points-to cardinality fingerprints (var_pts_total / field_pts_total) are
exact: ANY difference from the baseline fails, because the workload is
deterministic and a changed total means the solver computes a different
fixed point. The wave solver must also still beat the naive reference by
at least 2x at the largest shared size.
"""

import json
import sys


def die(msg):
    print(f"check_regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_andersen(run_path, base_path, grace_ms):
    with open(run_path) as f:
        run = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    sweep = run.get("sweep") or die("sweep missing or empty")
    base_rows = {r["n"]: r for r in base.get("sweep", [])}
    shared = [r for r in sweep if r["n"] in base_rows]
    if not shared:
        die(f"no sweep sizes shared with baseline {base_path}")

    for row in shared:
        n = row["n"]
        ref = base_rows[n]
        for key in ("var_pts_total", "field_pts_total"):
            if row.get(key) != ref.get(key):
                die(f"n={n}: {key} changed: {row.get(key)} vs baseline "
                    f"{ref.get(key)} (the solver's answer changed)")
        wave = float(row["wave_ms"])
        base_wave = float(ref["wave_ms"])
        limit = base_wave * 1.25 + grace_ms
        verdict = "OK" if wave <= limit else "FAIL"
        print(f"check_regression: andersen n={n} wave {wave:.3f} ms, "
              f"baseline {base_wave:.3f} ms, limit {limit:.3f} ms: {verdict}")
        if wave > limit:
            die(f"n={n}: wave solve regressed >25%: {wave:.3f} ms "
                f"vs baseline {base_wave:.3f} ms")

    largest = max(shared, key=lambda r: r["n"])
    speedup = float(largest["speedup"])
    print(f"check_regression: andersen n={largest['n']} speedup over naive "
          f"{speedup:.2f}x (need >= 2.0)")
    if speedup < 2.0:
        die(f"wave solver no longer >= 2x the naive reference at "
            f"n={largest['n']}: {speedup:.2f}x")

    refine = run.get("refine")
    if refine:
        frac = float(refine.get("round2plus_max_fraction", 0.0))
        print(f"check_regression: andersen refine n={refine.get('n')} "
              f"rounds={refine.get('rounds')} "
              f"round2plus_max_fraction={frac:.3f}, "
              f"incremental_solves={refine.get('incremental_solves')}")
        if refine.get("incremental_solves", 0) <= 0:
            die("refinement ran no incremental solves -- the re-solve "
                "path fell back to scratch")
    return 0


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    grace_ms = 5.0
    andersen = "--andersen" in argv[1:]
    summaries = "--summaries" in argv[1:]
    allocs = "--allocs" in argv[1:]
    for a in argv[1:]:
        if a.startswith("--grace-ms="):
            grace_ms = float(a.split("=", 1)[1])
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    run_path = args[0]
    if andersen:
        base_path = args[1] if len(args) > 1 else "bench/andersen_baseline.json"
        return check_andersen(run_path, base_path, grace_ms)
    base_path = args[1] if len(args) > 1 else "bench/scalability_baseline.json"

    with open(run_path) as f:
        run = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    sweep = run.get("jobs_sweep") or die("jobs_sweep missing or empty")
    single = next((r for r in sweep if r.get("jobs") == 1), None)
    if single is None:
        die("no jobs=1 entry in jobs_sweep")
    if single.get("states_visited", 0) <= 0:
        die("jobs=1 run visited no CFL states -- queries not running?")

    states = {r["states_visited"] for r in sweep}
    if len(states) != 1:
        die(f"states_visited differs across job counts: {sorted(states)} "
            "(deterministic accounting is broken)")

    base_single = next(
        (r for r in base.get("jobs_sweep", []) if r.get("jobs") == 1), None)
    if base_single is None:
        die(f"no jobs=1 entry in baseline {base_path}")

    wall = float(single["wall_ms"])
    base_wall = float(base_single["wall_ms"])
    limit = base_wall * 1.25 + grace_ms
    verdict = "OK" if wall <= limit else "FAIL"
    print(f"check_regression: single-thread wall {wall:.3f} ms, "
          f"baseline {base_wall:.3f} ms, limit {limit:.3f} ms "
          f"(1.25x + {grace_ms:g} ms grace): {verdict}")
    if wall > limit:
        die(f"single-thread wall time regressed >25%: {wall:.3f} ms "
            f"vs baseline {base_wall:.3f} ms")

    memo = run.get("memo_ablation", {})
    rate = memo.get("cache_hit_rate", 0.0)
    print(f"check_regression: memo cache hit rate {rate:.1%}, "
          f"single-thread improvement "
          f"{memo.get('single_thread_improvement', 0):.2f}x")

    if allocs:
        check_allocs(run, base)
    if summaries:
        check_summaries(run)
    return 0


def check_allocs(run, base):
    mem = run.get("memory") or die("--allocs: run has no memory section")
    ref = base.get("memory") or die(
        "--allocs: baseline has no memory section (regenerate it from a "
        "build that links lc_alloc_hook)")
    if not mem.get("alloc_hook", False):
        die("--allocs: run counted no allocations (lc_alloc_hook not "
            "linked into the bench)")
    if ref.get("alloc_hook", False):
        n = int(mem["heap_allocs"])
        base_n = int(ref["heap_allocs"])
        limit = base_n * 1.25
        verdict = "OK" if n <= limit else "FAIL"
        print(f"check_regression: heap allocations {n}, baseline {base_n}, "
              f"limit {limit:.0f} (1.25x): {verdict}")
        if n > limit:
            die(f"heap allocations regressed >25%: {n} vs baseline {base_n}")
    # Peak RSS is page-granular and process-wide, so give it a small
    # absolute grace on top of the relative band.
    rss = int(mem["peak_rss_kb"])
    base_rss = int(ref["peak_rss_kb"])
    rss_limit = base_rss * 1.25 + 512
    verdict = "OK" if rss <= rss_limit else "FAIL"
    print(f"check_regression: peak RSS {rss} KiB, baseline {base_rss} KiB, "
          f"limit {rss_limit:.0f} KiB (1.25x + 512): {verdict}")
    if rss > rss_limit:
        die(f"peak RSS regressed >25%: {rss} KiB vs baseline {base_rss} KiB")


def check_summaries(run):
    rows = run.get("summary_ablation") or die(
        "--summaries: summary_ablation missing or empty")
    for row in rows:
        if not row.get("reports_identical", False):
            die(f"summary ablation at {row.get('clusters')} clusters: "
                "reports differ with summaries on vs off (composition is "
                "not exact)")
    largest = max(rows, key=lambda r: r.get("clusters", 0))
    on = largest.get("states_on", 0)
    off = largest.get("states_off", 0)
    if off <= 0:
        die("--summaries: no-summaries run visited no CFL states")
    ratio = on / off
    verdict = "OK" if ratio <= 0.7 else "FAIL"
    print(f"check_regression: summary ablation at {largest['clusters']} "
          f"clusters: states {on} vs {off} (ratio {ratio:.3f}, "
          f"need <= 0.7): {verdict}")
    if ratio > 0.7:
        die(f"method summaries save too little at "
            f"{largest['clusters']} clusters: states ratio {ratio:.3f} "
            "> 0.7")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
