//===-- memory_growth.cpp - dynamic evidence of the leak pattern ------------===//
//
// The paper's motivation: "if each such event does not appropriately clean
// up a small number of references, unnecessary references can quickly
// accumulate and cause the memory footprint to grow." This harness runs
// every Table 1 subject under the concrete interpreter (the Fig. 3
// semantics), applies the Definition 1 oracle, and prints the per-subject
// growth series: objects created by the checked loop, how many of them
// end up leaking, and the per-iteration growth rate -- the dynamic
// counterpart of the static reports.
//
// Run:  ./build/bench/memory_growth
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "interp/Interp.h"
#include "subjects/Subjects.h"

#include "support/MemStats.h"

#include <cstdio>
#include <map>

using namespace lc;
using namespace lc::subjects;

int main() {
  std::printf("Dynamic leak growth per subject (Definition 1 oracle)\n\n");
  std::printf("%-12s %6s %9s %9s %9s %10s %12s\n", "Subject", "iters",
              "created", "leaking", "leak/iter", "allocs", "top leaking site");

  uint64_t StartAllocs = lc::mem::heapAllocs();
  for (const Subject &S : all()) {
    uint64_t AllocsBefore = lc::mem::heapAllocs();
    Program P;
    DiagnosticEngine Diags;
    if (!compileSource(S.Source, P, Diags)) {
      std::fprintf(stderr, "%s: compile error\n%s", S.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    InterpOptions Opts;
    Opts.TrackedLoop = P.findLoop(S.LoopLabel);
    if (Opts.TrackedLoop == kInvalidId) {
      std::fprintf(stderr, "%s: loop not found\n", S.Name.c_str());
      return 1;
    }
    InterpResult R = interpret(P, Opts);
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", S.Name.c_str(),
                   R.TrapMessage.c_str());
      return 1;
    }
    DynamicLeakReport D = detectDynamicLeaks(R);

    size_t CreatedInside = 0;
    for (const RtObject &O : R.Heap)
      CreatedInside += O.CreatedInside;
    // Per-site leak counts for the headline row.
    std::map<AllocSiteId, unsigned> PerSite;
    for (uint32_t Obj : D.Objects)
      ++PerSite[R.Heap[Obj].Site];
    AllocSiteId Top = kInvalidId;
    unsigned TopN = 0;
    for (const auto &[Site, N] : PerSite)
      if (N > TopN && Site != kInvalidId) {
        Top = Site;
        TopN = N;
      }
    double PerIter = R.TrackedIters
                         ? static_cast<double>(D.Objects.size()) /
                               static_cast<double>(R.TrackedIters)
                         : 0.0;
    std::printf("%-12s %6llu %9zu %9zu %9.2f %10llu %s (%u)\n", S.Name.c_str(),
                static_cast<unsigned long long>(R.TrackedIters),
                CreatedInside, D.Objects.size(), PerIter,
                static_cast<unsigned long long>(lc::mem::heapAllocs() -
                                                AllocsBefore),
                Top == kInvalidId ? "-" : P.allocSiteName(Top).c_str(),
                TopN);
  }
  std::printf("\nEvery subject accrues unnecessary references at a steady "
              "per-iteration rate --\nthe sustained behaviour the static "
              "analysis is designed to catch.\n");
  if (lc::mem::heapAllocsAvailable())
    std::printf("\nmemory: %llu heap allocations across all subjects, "
                "peak RSS %llu KiB\n",
                static_cast<unsigned long long>(lc::mem::heapAllocs() -
                                                StartAllocs),
                static_cast<unsigned long long>(lc::mem::peakRssKb()));
  else
    std::printf("\nmemory: allocation counting unavailable "
                "(lc_alloc_hook not linked), peak RSS %llu KiB\n",
                static_cast<unsigned long long>(lc::mem::peakRssKb()));
  return 0;
}
