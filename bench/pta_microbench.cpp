//===-- pta_microbench.cpp - points-to substrate microbenchmarks ------------===//
//
// google-benchmark measurements of the analysis substrate, supporting the
// section 4 claim that the demand-driven CFL formulation explores paths
// "individually for each object ... without requiring an initial
// whole-program analysis": whole-program Andersen solve time vs the cost
// of a single demand query, as the program grows.
//
// Run:  ./build/bench/pta_microbench
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "pta/CflPta.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace lc;

namespace {

/// Program with \p N id-function call chains feeding distinct objects.
std::string makeProgram(unsigned N) {
  std::ostringstream OS;
  OS << "class Id { Object id(Object x) { return x; } }\n";
  for (unsigned C = 0; C < N; ++C)
    OS << "class Item" << C << " { Object payload; }\n";
  OS << "class Main { static void main() {\n";
  OS << "  Id f = new Id();\n";
  for (unsigned C = 0; C < N; ++C) {
    OS << "  Item" << C << " v" << C << " = new Item" << C << "();\n";
    OS << "  Object r" << C << " = f.id(v" << C << ");\n";
  }
  OS << "} }\n";
  return OS.str();
}

struct Built {
  Program P;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<Pag> G;
};

Built buildIr(unsigned N) {
  Built B;
  DiagnosticEngine Diags;
  bool Ok = compileSource(makeProgram(N), B.P, Diags);
  if (!Ok)
    std::abort();
  B.CG = std::make_unique<CallGraph>(B.P, CallGraphKind::Rta);
  B.G = std::make_unique<Pag>(B.P, *B.CG);
  return B;
}

void BM_AndersenSolve(benchmark::State &State) {
  Built B = buildIr(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    AndersenPta PTA(*B.G);
    benchmark::DoNotOptimize(PTA.pointsTo(0).count());
  }
  State.SetComplexityN(State.range(0));
}

void BM_CflSingleQuery(benchmark::State &State) {
  Built B = buildIr(static_cast<unsigned>(State.range(0)));
  AndersenPta Base(*B.G);
  CflPta Cfl(*B.G, Base);
  // Query the last r variable of main.
  MethodId Main = B.P.EntryMethod;
  LocalId Target = static_cast<LocalId>(B.P.Methods[Main].Locals.size() - 1);
  for (auto _ : State) {
    CflResult R = Cfl.pointsTo(Main, Target);
    benchmark::DoNotOptimize(R.Objects.size());
  }
  State.SetComplexityN(State.range(0));
}

void BM_CallGraphBuild(benchmark::State &State) {
  Program P;
  DiagnosticEngine Diags;
  if (!compileSource(makeProgram(static_cast<unsigned>(State.range(0))), P,
                     Diags))
    std::abort();
  for (auto _ : State) {
    CallGraph CG(P, CallGraphKind::Rta);
    benchmark::DoNotOptimize(CG.numReachable());
  }
}

void BM_FrontendCompile(benchmark::State &State) {
  std::string Src = makeProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    Program P;
    DiagnosticEngine Diags;
    bool Ok = compileSource(Src, P, Diags);
    benchmark::DoNotOptimize(Ok);
  }
}

} // namespace

BENCHMARK(BM_AndersenSolve)->Arg(8)->Arg(32)->Arg(128)->Complexity();
BENCHMARK(BM_CflSingleQuery)->Arg(8)->Arg(32)->Arg(128)->Complexity();
BENCHMARK(BM_CallGraphBuild)->Arg(8)->Arg(64);
BENCHMARK(BM_FrontendCompile)->Arg(8)->Arg(64);

BENCHMARK_MAIN();
