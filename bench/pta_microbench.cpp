//===-- pta_microbench.cpp - points-to substrate microbenchmarks ------------===//
//
// google-benchmark measurements of the analysis substrate, supporting the
// section 4 claim that the demand-driven CFL formulation explores paths
// "individually for each object ... without requiring an initial
// whole-program analysis": whole-program Andersen solve time vs the cost
// of a single demand query, as the program grows.
//
// Run:  ./build/bench/pta_microbench
//
// The wave-propagation solver additionally has a dedicated sweep mode
// that bypasses google-benchmark:
//
//   ./build/bench/pta_microbench --andersen-sweep [--quick] [--out PATH]
//
// It solves a family of synthetic programs (copy rings, mutually
// recursive call rings, hot heap slots with reader feedback) with both
// the production wave solver and the retained naive reference, checks
// they agree, times a multi-round incremental refinement, and emits
// BENCH_andersen.json for bench/check_regression.py --andersen.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "pta/AndersenRef.h"
#include "pta/CflPta.h"
#include "pta/RefinedCallGraph.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace lc;

namespace {

/// Program with \p N id-function call chains feeding distinct objects.
std::string makeProgram(unsigned N) {
  std::ostringstream OS;
  OS << "class Id { Object id(Object x) { return x; } }\n";
  for (unsigned C = 0; C < N; ++C)
    OS << "class Item" << C << " { Object payload; }\n";
  OS << "class Main { static void main() {\n";
  OS << "  Id f = new Id();\n";
  for (unsigned C = 0; C < N; ++C) {
    OS << "  Item" << C << " v" << C << " = new Item" << C << "();\n";
    OS << "  Object r" << C << " = f.id(v" << C << ");\n";
  }
  OS << "} }\n";
  return OS.str();
}

struct Built {
  Program P;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<Pag> G;
};

Built buildIr(unsigned N) {
  Built B;
  DiagnosticEngine Diags;
  bool Ok = compileSource(makeProgram(N), B.P, Diags);
  if (!Ok)
    std::abort();
  B.CG = std::make_unique<CallGraph>(B.P, CallGraphKind::Rta);
  B.G = std::make_unique<Pag>(B.P, *B.CG);
  return B;
}

void BM_AndersenSolve(benchmark::State &State) {
  Built B = buildIr(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    AndersenPta PTA(*B.G);
    benchmark::DoNotOptimize(PTA.pointsTo(0).count());
  }
  State.SetComplexityN(State.range(0));
}

void BM_CflSingleQuery(benchmark::State &State) {
  Built B = buildIr(static_cast<unsigned>(State.range(0)));
  AndersenPta Base(*B.G);
  CflPta Cfl(*B.G, Base);
  // Query the last r variable of main.
  MethodId Main = B.P.EntryMethod;
  LocalId Target = static_cast<LocalId>(B.P.Methods[Main].Locals.size() - 1);
  for (auto _ : State) {
    CflResult R = Cfl.pointsTo(Main, Target);
    benchmark::DoNotOptimize(R.Objects.size());
  }
  State.SetComplexityN(State.range(0));
}

void BM_CallGraphBuild(benchmark::State &State) {
  Program P;
  DiagnosticEngine Diags;
  if (!compileSource(makeProgram(static_cast<unsigned>(State.range(0))), P,
                     Diags))
    std::abort();
  for (auto _ : State) {
    CallGraph CG(P, CallGraphKind::Rta);
    benchmark::DoNotOptimize(CG.numReachable());
  }
}

void BM_FrontendCompile(benchmark::State &State) {
  std::string Src = makeProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    Program P;
    DiagnosticEngine Diags;
    bool Ok = compileSource(Src, P, Diags);
    benchmark::DoNotOptimize(Ok);
  }
}

//===----------------------------------------------------------------------===//
// --andersen-sweep mode
//===----------------------------------------------------------------------===//

/// Stress program for the inclusion solver, sized by \p N. The dominant
/// structure is a length-N copy *chain* with allocation sites staggered
/// along it in reverse order -- the textbook worst case for full-set
/// re-propagation (every upstream arrival makes the naive solver re-push
/// complete sets down the rest of the chain, Theta(N^2) unions) and the
/// best case for rank-ordered difference propagation (each node drains
/// one coalesced delta, Theta(N) unions). On top of that: merge diamonds
/// (fan-out/fan-in), a modest copy ring hanging off the chain's tail
/// (SCC for the collapse pass), a ring of mutually recursive static
/// methods (param/return cycles across methods), and a hot heap slot
/// with many readers. With \p Devirt, a chained-devirtualization tail is
/// appended so call-graph refinement runs several rounds over the same
/// large PAG -- the incremental re-solve workload.
std::string makeSweepProgram(unsigned N, bool Devirt) {
  unsigned Chain = N;
  unsigned Sites = std::max(8u, N / 2);
  unsigned RingLen = std::max(8u, N / 16);
  unsigned MethodRing = std::max(4u, N / 32);
  std::ostringstream OS;
  OS << "class Box { Object f; Box link; }\n";
  OS << "class Gen {\n";
  for (unsigned M = 0; M < MethodRing; ++M)
    OS << "  static Object m" << M << "(Object v, int n) { if (n > 0) { "
       << "return Gen.m" << (M + 1) % MethodRing
       << "(v, n - 1); } return v; }\n";
  OS << "}\n";
  if (Devirt) {
    OS << "class A0 { A0 next() { return this; } }\n";
    for (unsigned D = 1; D <= 5; ++D)
      OS << "class A" << D << " extends A0 { A0 next() { return "
         << (D < 5 ? "new A" + std::to_string(D + 1) + "()" : "this")
         << "; } }\n";
  }
  OS << "class Main { static void main() {\n";
  for (unsigned T = 0; T <= Chain; ++T)
    OS << "  Object t" << T << " = null;\n";
  // Reverse-staggered allocation sites: the site nearest the chain's end
  // is seeded first, so naive FIFO propagation keeps arriving upstream.
  for (unsigned S = 0; S < Sites; ++S)
    OS << "  t" << Chain - 1 - (S * Chain) / Sites << " = new Box();\n";
  for (unsigned K = 0; K < Chain; ++K)
    OS << "  t" << K + 1 << " = t" << K << ";\n";
  // Merge diamonds every 16 links.
  for (unsigned K = 0; K + 1 <= Chain; K += 16) {
    OS << "  Object u" << K << " = t" << K << ";\n";
    OS << "  Object w" << K << " = t" << K << ";\n";
    OS << "  t" << K + 1 << " = u" << K << ";\n";
    OS << "  t" << K + 1 << " = w" << K << ";\n";
  }
  // A modest ring off the tail: one SCC for the collapse pass.
  for (unsigned R = 0; R < RingLen; ++R)
    OS << "  Object g" << R << " = null;\n";
  OS << "  g0 = t" << Chain << ";\n";
  for (unsigned R = 0; R + 1 < RingLen; ++R)
    OS << "  g" << R + 1 << " = g" << R << ";\n";
  OS << "  g0 = g" << RingLen - 1 << ";\n";
  // Push a sample of chain nodes through the method ring. The result
  // lands in a fresh local (not back into the chain): the chain must
  // stay acyclic or every 32-link segment would collapse away and the
  // rank-ordering comparison would degenerate.
  for (unsigned K = 0; K < Chain; K += 32)
    OS << "  Object x" << K << " = Gen.m0(t" << K << ", 3);\n";
  // Hot slot: stores from along the chain, many readers.
  OS << "  Box b = new Box();\n";
  for (unsigned K = 0; K < Chain; K += 8)
    OS << "  b.f = t" << K << ";\n";
  for (unsigned R = 0; R < Chain / 8; ++R)
    OS << "  Object r" << R << " = b.f;\n";
  if (Devirt) {
    OS << "  A0 a = new A1();\n";
    OS << "  A0 d0 = a.next();\n";
    for (unsigned D = 1; D <= 4; ++D)
      OS << "  A0 d" << D << " = d" << D - 1 << ".next();\n";
  }
  OS << "} }\n";
  return OS.str();
}

double nowMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Sum of points-to cardinalities over all variable nodes / all heap
/// slots -- the regression gate's precision fingerprint.
template <typename Solver>
uint64_t varPtsTotal(const Pag &G, const Solver &S) {
  uint64_t Total = 0;
  for (PagNodeId V = 0; V < G.numNodes(); ++V)
    Total += S.pointsTo(V).count();
  return Total;
}
template <typename Solver>
uint64_t fieldPtsTotal(const Program &P, const Solver &S) {
  uint64_t Total = 0;
  for (AllocSiteId Site = 0; Site < P.AllocSites.size(); ++Site)
    for (FieldId F = 0; F < P.Fields.size(); ++F)
      Total += S.fieldPointsTo(Site, F).count();
  return Total;
}

int runAndersenSweep(bool Quick, const char *OutPath) {
  std::vector<unsigned> Sizes =
      Quick ? std::vector<unsigned>{128, 256}
            : std::vector<unsigned>{256, 512, 1024, 2048};
  unsigned Reps = Quick ? 1 : 3;

  std::ostringstream J;
  J << "{\n  \"sweep\": [\n";
  bool FirstRow = true;
  for (unsigned N : Sizes) {
    Program P;
    DiagnosticEngine Diags;
    if (!compileSource(makeSweepProgram(N, false), P, Diags)) {
      std::fprintf(stderr, "sweep program %u failed to compile:\n%s\n", N,
                   Diags.str().c_str());
      return 1;
    }
    CallGraph CG(P, CallGraphKind::Rta);
    Pag G(P, CG);

    double NaiveMs = 1e300, WaveMs = 1e300;
    uint64_t VarTotal = 0, FieldTotal = 0;
    // Counters come through the same recordStats mapping every other
    // consumer (driver, refinement loop) uses, not the raw counter struct.
    MetricsRegistry Counters;
    for (unsigned R = 0; R < Reps; ++R) {
      auto T0 = std::chrono::steady_clock::now();
      NaiveAndersenRef Naive(G);
      NaiveMs = std::min(NaiveMs, nowMs(T0));

      auto T1 = std::chrono::steady_clock::now();
      AndersenPta Wave(G);
      WaveMs = std::min(WaveMs, nowMs(T1));

      uint64_t WaveVar = varPtsTotal(G, Wave);
      uint64_t NaiveVar = varPtsTotal(G, Naive);
      uint64_t WaveField = fieldPtsTotal(P, Wave);
      uint64_t NaiveField = fieldPtsTotal(P, Naive);
      if (WaveVar != NaiveVar || WaveField != NaiveField) {
        std::fprintf(stderr,
                     "sweep %u: solver disagreement (var %llu vs %llu, "
                     "field %llu vs %llu)\n",
                     N, (unsigned long long)WaveVar,
                     (unsigned long long)NaiveVar,
                     (unsigned long long)WaveField,
                     (unsigned long long)NaiveField);
        return 1;
      }
      VarTotal = WaveVar;
      FieldTotal = WaveField;
      Counters = MetricsRegistry();
      Wave.recordStats(Counters);
    }

    std::printf("sweep n=%-4u nodes=%-6zu naive=%9.3fms wave=%9.3fms "
                "speedup=%6.2fx sccs=%llu merged=%llu\n",
                N, G.numNodes(), NaiveMs, WaveMs, NaiveMs / WaveMs,
                (unsigned long long)Counters.get("andersen-sccs-collapsed"),
                (unsigned long long)Counters.get("andersen-scc-nodes-merged"));

    J << (FirstRow ? "" : ",\n");
    FirstRow = false;
    J << "    {\"n\": " << N << ", \"nodes\": " << G.numNodes()
      << ", \"naive_ms\": " << NaiveMs << ", \"wave_ms\": " << WaveMs
      << ", \"speedup\": " << NaiveMs / WaveMs
      << ", \"var_pts_total\": " << VarTotal
      << ", \"field_pts_total\": " << FieldTotal
      << ", \"sccs_collapsed\": " << Counters.get("andersen-sccs-collapsed")
      << ", \"scc_nodes_merged\": "
      << Counters.get("andersen-scc-nodes-merged")
      << ", \"online_collapse_passes\": "
      << Counters.get("andersen-online-collapse-passes")
      << ", \"delta_pushes\": " << Counters.get("andersen-delta-pushes")
      << "}";
  }
  J << "\n  ],\n";

  // Refinement workload: chained devirtualization on top of the largest
  // sweep body. Rounds 2+ are incremental re-solves; the gate watches
  // their cost relative to the initial from-scratch round.
  {
    unsigned N = Sizes.back();
    Program P;
    DiagnosticEngine Diags;
    if (!compileSource(makeSweepProgram(N, true), P, Diags)) {
      std::fprintf(stderr, "refine program failed to compile:\n%s\n",
                   Diags.str().c_str());
      return 1;
    }
    RefinedSubstrate R = buildRefinedSubstrate(P, 6);
    double MaxFrac = 0;
    for (size_t I = 2; I < R.SolveSeconds.size(); ++I)
      MaxFrac = std::max(MaxFrac, R.SolveSeconds[I] / R.SolveSeconds[0]);
    std::printf("refine n=%u rounds=%u solves:", N, R.Rounds);
    for (double S : R.SolveSeconds)
      std::printf(" %.3fms", S * 1e3);
    std::printf(" round2plus_max_fraction=%.3f\n", MaxFrac);

    J << "  \"refine\": {\"n\": " << N << ", \"rounds\": " << R.Rounds
      << ", \"round_ms\": [";
    for (size_t I = 0; I < R.SolveSeconds.size(); ++I)
      J << (I ? ", " : "") << R.SolveSeconds[I] * 1e3;
    J << "], \"round2plus_max_fraction\": " << MaxFrac
      << ", \"affected_vars\": "
      << R.Statistics.get("andersen-affected-vars")
      << ", \"reused_vars\": " << R.Statistics.get("andersen-reused-vars")
      << ", \"incremental_solves\": "
      << R.Statistics.get("andersen-incremental-solves") << "}\n";
  }
  J << "}\n";

  if (std::FILE *F = std::fopen(OutPath, "w")) {
    std::fputs(J.str().c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n", OutPath);
  } else {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  return 0;
}

} // namespace

BENCHMARK(BM_AndersenSolve)->Arg(8)->Arg(32)->Arg(128)->Complexity();
BENCHMARK(BM_CflSingleQuery)->Arg(8)->Arg(32)->Arg(128)->Complexity();
BENCHMARK(BM_CallGraphBuild)->Arg(8)->Arg(64);
BENCHMARK(BM_FrontendCompile)->Arg(8)->Arg(64);

int main(int argc, char **argv) {
  bool Sweep = false, Quick = false;
  const char *Out = "BENCH_andersen.json";
  std::vector<char *> Rest;
  for (int I = 0; I < argc; ++I) {
    if (std::strcmp(argv[I], "--andersen-sweep") == 0)
      Sweep = true;
    else if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      Out = argv[++I];
    else
      Rest.push_back(argv[I]);
  }
  if (Sweep)
    return runAndersenSweep(Quick, Out);

  int RestArgc = static_cast<int>(Rest.size());
  benchmark::Initialize(&RestArgc, Rest.data());
  if (benchmark::ReportUnrecognizedArguments(RestArgc, Rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
