//===-- table1_main.cpp - regenerates the paper's Table 1 -------------------===//
//
// Prints the reproduction of Table 1 ("Analysis results"): for each of the
// eight subjects, the reachable-method count (Mtds), statement count over
// reachable methods (Stmts), wall-clock analysis time, context-sensitive
// inside allocation sites (LO), reported leaking sites (LS, both
// context-sensitive and site-level), false positives scored against the
// subjects' ground-truth annotations (FP), and the false-positive rate
// (FPR). The right-hand columns recall the paper's numbers (taken from the
// section 5.2 narratives; see EXPERIMENTS.md for the mapping).
//
// Run:  ./build/bench/table1_main
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "bench/RunLoop.h"
#include "subjects/Scoring.h"
#include "subjects/Subjects.h"

#include <chrono>
#include <cstdio>

using namespace lc;
using namespace lc::subjects;

int main() {
  std::printf("Table 1 reproduction: LeakChecker analysis results\n");
  std::printf("(paper columns from the case-study narratives; absolute "
              "sizes/times are not\ncomparable -- subjects are MJ models, "
              "not the original bytecode)\n\n");
  std::printf("%-12s %6s %7s %9s %5s %4s %8s %4s %7s | %8s %8s\n", "Subject",
              "Mtds", "Stmts", "Time(ms)", "LO", "LS", "LS(ctx)", "FP",
              "FPR", "paperLS", "paperFP");

  double FprSum = 0;
  unsigned FprCount = 0;
  bool AnyMiss = false;

  for (const Subject &S : subjects::all()) {
    DiagnosticEngine Diags;
    auto T0 = std::chrono::steady_clock::now();
    auto Checker = LeakChecker::fromSource(S.Source, Diags, S.Options);
    if (!Checker) {
      std::fprintf(stderr, "%s failed to compile:\n%s", S.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    LeakAnalysisResult Result =
        bench::runLoop(*Checker, S.LoopLabel, Checker->options());
    auto T1 = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(T1 - T0).count();
    Score Sc = score(Checker->program(), Result);
    AnyMiss |= !Sc.Missed.empty();
    if (Sc.Reported) {
      FprSum += Sc.fpr();
      ++FprCount;
    }

    std::printf("%-12s %6zu %7zu %9.1f %5llu %4u %8llu %4u %6.1f%% | %8u %8u\n",
                S.Name.c_str(), Checker->reachableMethods(),
                Checker->reachableStmts(), Ms,
                static_cast<unsigned long long>(Result.NumInsideCtxSites),
                Sc.Reported,
                static_cast<unsigned long long>(Result.NumLeakCtxSites),
                Sc.falsePositives(), Sc.fpr() * 100, S.PaperLeakSites,
                S.PaperFalsePos);
  }

  if (FprCount) {
    std::printf("\naverage FPR: %.1f%% (paper: 49.8%%)\n",
                FprSum / FprCount * 100);
  }
  std::printf("known leaks missed: %s (paper: none)\n",
              AnyMiss ? "YES -- regression!" : "none");
  return AnyMiss ? 1 : 0;
}
