//===-- ablations.cpp - design-choice ablations over the subjects -----------===//
//
// Regenerates the paper's design-choice evidence as one table per knob:
//
//   - pivot mode (section 4 "Pivot Mode"): reports with and without
//     root-only filtering;
//   - the library flows-in rule (section 4 "Flow into Library Methods"):
//     leaks kept vs lost when container-internal reads count as
//     retrievals;
//   - thread modeling (section 5.2, Mckoi): reports with and without the
//     started-threads-are-outside workaround;
//   - context sensitivity: context-sensitive vs insensitive site counts
//     (the LO / LS(ctx) columns);
//   - the escape-analysis pre-filter: per-site flows-out queries skipped,
//     report identity with the filter on vs off, and the wall-time delta.
//
// Run:  ./build/bench/ablations
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "bench/RunLoop.h"
#include "subjects/Scoring.h"
#include "subjects/Subjects.h"

#include <chrono>
#include <cstdio>

using namespace lc;
using namespace lc::subjects;

int main() {
  std::printf("Design-choice ablations over the eight subjects\n\n");
  std::printf("%-12s | %11s | %11s | %11s | %11s | %11s | %9s\n", "Subject",
              "default LS", "no pivot", "no librule", "no threads",
              "destr.upd", "LO ci/cs");
  std::printf("%.*s\n", 106,
              "--------------------------------------------------------------"
              "----------------------------------------------");

  for (const Subject &S : subjects::all()) {
    DiagnosticEngine Diags;
    auto Checker = LeakChecker::fromSource(S.Source, Diags, S.Options);
    if (!Checker) {
      std::fprintf(stderr, "%s: compile error\n%s", S.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    LoopId Loop = Checker->program().findLoop(S.LoopLabel);

    auto Default = bench::runLoop(*Checker, Loop, S.Options);

    LeakOptions NoPivot = S.Options;
    NoPivot.PivotMode = false;
    auto RNoPivot = bench::runLoop(*Checker, Loop, NoPivot);

    LeakOptions NoLib = S.Options;
    NoLib.LibraryRule = false;
    auto RNoLib = bench::runLoop(*Checker, Loop, NoLib);

    LeakOptions NoThreads = S.Options;
    NoThreads.ModelThreads = false;
    auto RNoThreads = bench::runLoop(*Checker, Loop, NoThreads);

    LeakOptions NoCtx = S.Options;
    NoCtx.ContextSensitive = false;
    auto RNoCtx = bench::runLoop(*Checker, Loop, NoCtx);

    // The paper's named future-work refinement.
    LeakOptions Destr = S.Options;
    Destr.ModelDestructiveUpdates = true;
    auto RDestr = bench::runLoop(*Checker, Loop, Destr);

    Score Dc = score(Checker->program(), Default);
    Score Pv = score(Checker->program(), RNoPivot);
    Score Lb = score(Checker->program(), RNoLib);
    Score Th = score(Checker->program(), RNoThreads);
    Score Du = score(Checker->program(), RDestr);

    std::printf("%-12s | %4u (%2zu mi) | %4u (%2zu mi) | %4u (%2zu mi) | "
                "%4u (%2zu mi) | %4u (%2zu mi) | %4llu/%-4llu\n",
                S.Name.c_str(), Dc.Reported, Dc.Missed.size(), Pv.Reported,
                Pv.Missed.size(), Lb.Reported, Lb.Missed.size(), Th.Reported,
                Th.Missed.size(), Du.Reported, Du.Missed.size(),
                static_cast<unsigned long long>(RNoCtx.NumInsideCtxSites),
                static_cast<unsigned long long>(Default.NumInsideCtxSites));
  }

  std::printf("\n(mi = known leaks missed under that configuration; the "
              "library-rule and thread\ncolumns show where disabling the "
              "paper's mechanism loses real leaks; destr.upd\nis the paper's "
              "future-work refinement -- fewer reports, still zero misses.)\n");

  // --- Escape-analysis pre-filter --------------------------------------------

  std::printf("\nEscape-analysis pre-filter (queries skipped, report "
              "identity, wall time)\n\n");
  std::printf("%-12s | %8s | %8s | %9s | %9s | %9s | %8s\n", "Subject",
              "captured", "skipped", "on (us)", "off (us)", "delta", "reports");
  std::printf("%.*s\n", 86,
              "--------------------------------------------------------------"
              "----------------------------------------------");

  bool AllIdentical = true;
  for (const Subject &S : subjects::all()) {
    DiagnosticEngine Diags;
    auto Checker = LeakChecker::fromSource(S.Source, Diags, S.Options);
    if (!Checker)
      return 1;
    LoopId Loop = Checker->program().findLoop(S.LoopLabel);

    LeakOptions On = S.Options;
    On.EscapePrefilter = true;
    LeakOptions Off = S.Options;
    Off.EscapePrefilter = false;

    // Median-free micro timing: best of N runs per configuration (the
    // substrate is shared, so only the per-loop analysis is measured).
    auto TimeBest = [&](const LeakOptions &O) {
      double Best = 1e18;
      for (int I = 0; I < 10; ++I) {
        auto T0 = std::chrono::steady_clock::now();
        auto R = bench::runLoop(*Checker, Loop, O);
        auto T1 = std::chrono::steady_clock::now();
        (void)R;
        double Us =
            std::chrono::duration<double, std::micro>(T1 - T0).count();
        if (Us < Best)
          Best = Us;
      }
      return Best;
    };

    auto ROn = bench::runLoop(*Checker, Loop, On);
    auto ROff = bench::runLoop(*Checker, Loop, Off);
    bool Identical = renderLeakReport(Checker->program(), ROn) ==
                     renderLeakReport(Checker->program(), ROff);
    AllIdentical &= Identical;
    double UsOn = TimeBest(On), UsOff = TimeBest(Off);

    std::printf("%-12s | %8llu | %8llu | %9.0f | %9.0f | %+8.1f%% | %s\n",
                S.Name.c_str(),
                static_cast<unsigned long long>(
                    ROn.Statistics.get("escape-captured-sites")),
                static_cast<unsigned long long>(
                    ROn.Statistics.get("cfl-queries-skipped")),
                UsOn, UsOff, (UsOn - UsOff) / UsOff * 100.0,
                Identical ? "identical" : "DIFFER");
  }

  std::printf("\n(captured = sites the escape pre-pass proved iteration-local "
              "for the checked\nloop; skipped = per-site flows-out queries "
              "avoided; reports must be identical\nwith the filter on or off "
              "-- the pruning is an optimization, not a refinement.\nOn these "
              "miniature subjects the pre-pass's fixed cost can exceed the "
              "avoided\nquery time; the saving scales with the store graph, "
              "the overhead does not.)\n");
  return AllIdentical ? 0 : 1;
}
