//===-- ablations.cpp - design-choice ablations over the subjects -----------===//
//
// Regenerates the paper's design-choice evidence as one table per knob:
//
//   - pivot mode (section 4 "Pivot Mode"): reports with and without
//     root-only filtering;
//   - the library flows-in rule (section 4 "Flow into Library Methods"):
//     leaks kept vs lost when container-internal reads count as
//     retrievals;
//   - thread modeling (section 5.2, Mckoi): reports with and without the
//     started-threads-are-outside workaround;
//   - context sensitivity: context-sensitive vs insensitive site counts
//     (the LO / LS(ctx) columns).
//
// Run:  ./build/bench/ablations
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "subjects/Scoring.h"
#include "subjects/Subjects.h"

#include <cstdio>

using namespace lc;
using namespace lc::subjects;

int main() {
  std::printf("Design-choice ablations over the eight subjects\n\n");
  std::printf("%-12s | %11s | %11s | %11s | %11s | %11s | %9s\n", "Subject",
              "default LS", "no pivot", "no librule", "no threads",
              "destr.upd", "LO ci/cs");
  std::printf("%.*s\n", 106,
              "--------------------------------------------------------------"
              "----------------------------------------------");

  for (const Subject &S : subjects::all()) {
    DiagnosticEngine Diags;
    auto Checker = LeakChecker::fromSource(S.Source, Diags, S.Options);
    if (!Checker) {
      std::fprintf(stderr, "%s: compile error\n%s", S.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    LoopId Loop = Checker->program().findLoop(S.LoopLabel);

    auto Default = Checker->checkWith(Loop, S.Options);

    LeakOptions NoPivot = S.Options;
    NoPivot.PivotMode = false;
    auto RNoPivot = Checker->checkWith(Loop, NoPivot);

    LeakOptions NoLib = S.Options;
    NoLib.LibraryRule = false;
    auto RNoLib = Checker->checkWith(Loop, NoLib);

    LeakOptions NoThreads = S.Options;
    NoThreads.ModelThreads = false;
    auto RNoThreads = Checker->checkWith(Loop, NoThreads);

    LeakOptions NoCtx = S.Options;
    NoCtx.ContextSensitive = false;
    auto RNoCtx = Checker->checkWith(Loop, NoCtx);

    // The paper's named future-work refinement.
    LeakOptions Destr = S.Options;
    Destr.ModelDestructiveUpdates = true;
    auto RDestr = Checker->checkWith(Loop, Destr);

    Score Dc = score(Checker->program(), Default);
    Score Pv = score(Checker->program(), RNoPivot);
    Score Lb = score(Checker->program(), RNoLib);
    Score Th = score(Checker->program(), RNoThreads);
    Score Du = score(Checker->program(), RDestr);

    std::printf("%-12s | %4u (%2zu mi) | %4u (%2zu mi) | %4u (%2zu mi) | "
                "%4u (%2zu mi) | %4u (%2zu mi) | %4llu/%-4llu\n",
                S.Name.c_str(), Dc.Reported, Dc.Missed.size(), Pv.Reported,
                Pv.Missed.size(), Lb.Reported, Lb.Missed.size(), Th.Reported,
                Th.Missed.size(), Du.Reported, Du.Missed.size(),
                static_cast<unsigned long long>(RNoCtx.NumInsideCtxSites),
                static_cast<unsigned long long>(Default.NumInsideCtxSites));
  }

  std::printf("\n(mi = known leaks missed under that configuration; the "
              "library-rule and thread\ncolumns show where disabling the "
              "paper's mechanism loses real leaks; destr.upd\nis the paper's "
              "future-work refinement -- fewer reports, still zero misses.)\n");
  return 0;
}
