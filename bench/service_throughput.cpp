//===-- service_throughput.cpp - warm vs cold request throughput ------------===//
//
// Measures the payoff of the analysis service's session cache: the same
// stream of all-labeled requests over the eight paper subjects is executed
// (a) cold -- a fresh LeakChecker substrate per request, the pre-service
// workflow -- and (b) warm -- one AnalysisService whose LRU keeps every
// subject's session resident after the first round.
//
// The two streams must agree byte-for-byte (the service is a cache, not an
// approximation); the interesting number is requests/sec and the warm/cold
// wall-clock ratio. Emits BENCH_service.json so CI can track the ratio.
//
// A third leg re-runs the warm stream with the full observability plane on
// -- per-request attribution, a flushed-per-event structured event log,
// and periodic snapshot auto-dumps -- against a baseline warm leg that
// runs with attribution off. The overhead ratio (obs_wall_ms /
// warm_wall_ms) is the number check_regression.py --service gates at 3%;
// outcomes must stay byte-identical with observability on.
//
// Run:  ./build/bench/service_throughput [--quick] [--rounds N]
//                                        [--min-speedup X] [--out PATH]
//                                        [--events-out PATH]
//
// --min-speedup X exits non-zero when warm/cold falls below X (CI gates on
// the ISSUE's >= 3x acceptance with --min-speedup 3).
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"
#include "service/EventLog.h"
#include "subjects/Subjects.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace lc;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

/// One request: a subject, all labeled loops, default options.
AnalysisRequest makeRequest(const subjects::Subject &S, unsigned Round) {
  AnalysisRequest R;
  R.Id = std::string(S.Name) + "#" + std::to_string(Round);
  R.Source = S.Source;
  R.ProgramName = S.Name;
  R.Loops = LoopSet::allLabeled();
  return R;
}

/// The rendered reports of an outcome, flattened for byte comparison.
std::string flatten(const AnalysisOutcome &O) {
  std::string Flat;
  for (size_t I = 0; I < O.RenderedReports.size(); ++I) {
    Flat += O.LoopLabels[I];
    Flat += '\n';
    Flat += O.RenderedReports[I];
    Flat += '\n';
  }
  return Flat;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  unsigned Rounds = 0; // 0 = pick by --quick below
  double MinSpeedup = 0.0;
  std::string OutPath = "BENCH_service.json";
  std::string EventsOut = "BENCH_service_events.jsonl";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--rounds") && I + 1 < argc)
      Rounds = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--min-speedup") && I + 1 < argc)
      MinSpeedup = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else if (!std::strcmp(argv[I], "--events-out") && I + 1 < argc)
      EventsOut = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--rounds N] [--min-speedup X] "
                   "[--out PATH] [--events-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  // The ratio grows with rounds (cold pays substrate construction per
  // request, warm only on first touch); even --quick needs enough rounds
  // to amortize the warm stream's eight builds.
  if (Rounds == 0)
    Rounds = Quick ? 8 : 16;

  const std::vector<subjects::Subject> &Subjects = subjects::all();
  std::printf("Service throughput: %zu subjects x %u rounds, all labeled "
              "loops per request\n\n",
              Subjects.size(), Rounds);

  // --- cold: fresh substrate per request ----------------------------------
  std::vector<std::string> ColdFlat;
  Clock::time_point T0 = Clock::now();
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    for (const subjects::Subject &S : Subjects) {
      DiagnosticEngine Diags;
      auto Checker = LeakChecker::fromSource(S.Source, Diags);
      if (!Checker) {
        std::fprintf(stderr, "compile error in %s:\n%s", S.Name,
                     Diags.str().c_str());
        return 1;
      }
      AnalysisOutcome O = Checker->run(makeRequest(S, Round));
      if (!O.ok()) {
        std::fprintf(stderr, "cold request %s degraded: %s\n", O.Id.c_str(),
                     outcomeStatusName(O.Status));
        return 1;
      }
      ColdFlat.push_back(flatten(O));
    }
  }
  double ColdMs = msSince(T0);

  // --- warm: one service, sessions stay resident across rounds ------------
  // Attribution off: this leg is the clean floor the observability leg's
  // overhead is measured against.
  ServiceOptions SvcOpts;
  SvcOpts.MaxSessions = Subjects.size() + 1;
  SvcOpts.Attribution = false;
  AnalysisService Service(SvcOpts);
  std::vector<std::string> WarmFlat;
  T0 = Clock::now();
  Clock::time_point THot = T0;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    // Round 0 pays the eight builds; everything after runs hot. The hot
    // window is the denominator of the observability-overhead gate --
    // build times are milliseconds of noise that would swamp a 3% band.
    if (Round == 1)
      THot = Clock::now();
    for (const subjects::Subject &S : Subjects) {
      AnalysisOutcome O = Service.run(makeRequest(S, Round));
      if (!O.ok()) {
        std::fprintf(stderr, "warm request %s degraded: %s\n", O.Id.c_str(),
                     outcomeStatusName(O.Status));
        return 1;
      }
      WarmFlat.push_back(flatten(O));
    }
  }
  double WarmMs = msSince(T0);
  double WarmHotMs = msSince(THot);

  // The service must be a pure cache: identical bytes per request.
  if (WarmFlat != ColdFlat) {
    std::fprintf(stderr,
                 "FAIL: warm outcomes diverge from cold outcomes "
                 "(the session cache changed an answer)\n");
    return 1;
  }
  uint64_t Builds = Service.stats().get("service-session-builds");
  uint64_t Hits = Service.stats().get("service-session-hits");
  if (Builds != Subjects.size()) {
    std::fprintf(stderr,
                 "FAIL: expected exactly %zu substrate builds, saw %llu\n",
                 Subjects.size(), static_cast<unsigned long long>(Builds));
    return 1;
  }

  // --- obs: the warm stream again, full observability plane on ------------
  // Fresh service (its first round rebuilds the eight sessions, exactly
  // like the warm leg's first round did), per-request attribution, a
  // flushed-per-event structured log, and a snapshot auto-dump per round.
  ServiceOptions ObsOpts;
  ObsOpts.MaxSessions = Subjects.size() + 1;
  ObsOpts.Attribution = true;
  AnalysisService ObsService(ObsOpts);
  ServiceEventLog Log(EventsOut);
  if (!Log.ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", EventsOut.c_str());
    return 1;
  }
  ObsService.setEventLog(&Log);
  ObsService.setSnapshotEvery(Subjects.size());
  std::vector<std::string> ObsFlat;
  T0 = Clock::now();
  THot = T0;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    if (Round == 1)
      THot = Clock::now();
    for (const subjects::Subject &S : Subjects) {
      AnalysisOutcome O = ObsService.run(makeRequest(S, Round));
      if (!O.ok()) {
        std::fprintf(stderr, "obs request %s degraded: %s\n", O.Id.c_str(),
                     outcomeStatusName(O.Status));
        return 1;
      }
      if (!O.Observability.Valid) {
        std::fprintf(stderr, "FAIL: obs leg outcome %s carries no "
                             "attribution\n",
                     O.Id.c_str());
        return 1;
      }
      ObsFlat.push_back(flatten(O));
    }
  }
  double ObsMs = msSince(T0);
  double ObsHotMs = msSince(THot);

  // Observability must be a pure observer: identical bytes per request.
  if (ObsFlat != ColdFlat) {
    std::fprintf(stderr,
                 "FAIL: outcomes with observability on diverge from cold "
                 "outcomes (attribution changed an answer)\n");
    return 1;
  }
  uint64_t Events = Log.eventsEmitted();

  size_t Requests = Subjects.size() * Rounds;
  double ColdRps = Requests / (ColdMs / 1e3);
  double WarmRps = Requests / (WarmMs / 1e3);
  double ObsRps = Requests / (ObsMs / 1e3);
  double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0.0;
  // Overhead over the hot window only: every session resident in both
  // legs, so the ratio isolates the observability plane itself.
  double ObsOverhead = WarmHotMs > 0 ? ObsHotMs / WarmHotMs : 0.0;

  std::printf("%8s %10s %12s %12s\n", "stream", "requests", "wall(ms)",
              "req/sec");
  std::printf("%8s %10zu %12.2f %12.1f\n", "cold", Requests, ColdMs, ColdRps);
  std::printf("%8s %10zu %12.2f %12.1f\n", "warm", Requests, WarmMs, WarmRps);
  std::printf("%8s %10zu %12.2f %12.1f\n", "obs", Requests, ObsMs, ObsRps);
  std::printf("\nwarm sessions: %llu builds, %llu hits (outcomes "
              "byte-identical to cold)\n",
              static_cast<unsigned long long>(Builds),
              static_cast<unsigned long long>(Hits));
  std::printf("warm/cold wall-clock improvement: %.2fx\n", Speedup);
  std::printf("observability overhead (hot rounds, %.2f vs %.2f ms): "
              "%.2f%% (%llu events; outcomes byte-identical with "
              "attribution on)\n",
              ObsHotMs, WarmHotMs, (ObsOverhead - 1.0) * 100.0,
              static_cast<unsigned long long>(Events));

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"service_throughput\",\n");
  std::fprintf(Out, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(Out, "  \"subjects\": %zu,\n  \"rounds\": %u,\n",
               Subjects.size(), Rounds);
  std::fprintf(Out, "  \"requests\": %zu,\n", Requests);
  std::fprintf(Out, "  \"cold_wall_ms\": %.3f,\n  \"warm_wall_ms\": %.3f,\n",
               ColdMs, WarmMs);
  std::fprintf(Out, "  \"cold_rps\": %.3f,\n  \"warm_rps\": %.3f,\n", ColdRps,
               WarmRps);
  std::fprintf(Out,
               "  \"session_builds\": %llu,\n  \"session_hits\": %llu,\n",
               static_cast<unsigned long long>(Builds),
               static_cast<unsigned long long>(Hits));
  std::fprintf(Out, "  \"speedup\": %.3f,\n", Speedup);
  std::fprintf(Out, "  \"obs_wall_ms\": %.3f,\n  \"obs_rps\": %.3f,\n", ObsMs,
               ObsRps);
  std::fprintf(Out,
               "  \"warm_hot_wall_ms\": %.3f,\n  \"obs_hot_wall_ms\": %.3f,\n",
               WarmHotMs, ObsHotMs);
  std::fprintf(Out, "  \"obs_overhead\": %.4f,\n", ObsOverhead);
  std::fprintf(Out, "  \"events_emitted\": %llu,\n",
               static_cast<unsigned long long>(Events));
  std::fprintf(Out, "  \"obs_byte_identical\": true,\n");
  std::fprintf(Out, "  \"byte_identical\": true\n}\n");
  std::fclose(Out);
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (MinSpeedup > 0 && Speedup < MinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: warm/cold improvement %.2fx is below the required "
                 "%.2fx\n",
                 Speedup, MinSpeedup);
    return 1;
  }
  return 0;
}
