//===-- loop_triage.cpp - triaging an unfamiliar program ---------------------===//
//
// The workflow the paper's future work sketches, end-to-end: given a
// program you have never seen, (1) rank its loops by the structural
// signals of the leak pattern, (2) check the top candidates, and (3) read
// the reports with the precision refinement (destructive-update modeling)
// switched on to cut the overwritten-slot noise.
//
// Build & run:  ./build/examples/loop_triage
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "leak/LoopSuggestion.h"

#include <cstdio>

using namespace lc;

// An "unfamiliar" program: a job scheduler with several loops, only one of
// which exhibits the leak pattern.
static const char *Scheduler = R"(
  class Job { int id; int priority; }
  class AuditRecord { int jobId; }
  class Metrics { int completed; int failed; }

  class JobQueue {
    Job[] slots = new Job[256];
    int head;
    int tail;
    void enqueue(Job j) { this.slots[this.tail] = j; this.tail = this.tail + 1; }
    Job dequeue() {
      if (this.head == this.tail) { return null; }
      Job j = this.slots[this.head];
      this.slots[this.head] = null;
      this.head = this.head + 1;
      return j;
    }
  }

  // The audit trail: appended per job, never pruned, never read.
  class AuditLog {
    AuditRecord[] records = new AuditRecord[1024];
    int n;
    void append(AuditRecord r) { this.records[this.n] = r; this.n = this.n + 1; }
  }

  class Scheduler {
    JobQueue queue = new JobQueue();
    AuditLog audit = new AuditLog();
    Metrics metrics = new Metrics();
    Job current;

    void submitBatch(int count) {
      int i = 0;
      submit: while (i < count) {
        Job j = new Job();
        j.id = i;
        j.priority = i - (i / 3) * 3;
        this.queue.enqueue(j);
        i = i + 1;
      }
    }

    void drain() {
      int guard = 0;
      pump: while (guard < 64) {
        Job j = this.queue.dequeue();
        if (j == null) { return; }
        this.current = j;                     // overwritten next round
        AuditRecord r = new AuditRecord();    // appended, never read: leak
        r.jobId = j.id;
        this.audit.append(r);
        this.metrics.completed = this.metrics.completed + 1;
        guard = guard + 1;
      }
    }

    int busywork() {
      int acc = 0;
      int i = 0;
      crunch: while (i < 1000) { acc = acc + i * i; i = i + 1; }
      return acc;
    }
  }

  class Main {
    static void main() {
      Scheduler s = new Scheduler();
      s.submitBatch(32);
      s.drain();
      int x = s.busywork();
    }
  }
)";

int main() {
  DiagnosticEngine Diags;
  auto Checker = LeakChecker::fromSource(Scheduler, Diags);
  if (!Checker) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("Step 1 -- rank the loops structurally:\n\n");
  auto Ranked = suggestLoops(Checker->program(), Checker->callGraph(),
                             Checker->pag(), Checker->andersen(), 5);
  std::printf("%s\n", renderSuggestions(Checker->program(), Ranked).c_str());

  std::printf("Step 2 -- check every labeled loop:\n\n");
  AnalysisRequest AllReq;
  AllReq.Loops = LoopSet::allLabeled();
  AnalysisOutcome All = Checker->run(AllReq);
  for (size_t I = 0; I < All.Results.size(); ++I)
    std::printf("  %-8s -> %zu report(s)\n", All.LoopLabels[I].c_str(),
                All.Results[I].Reports.size());

  std::printf("\nStep 3 -- top candidate with the precision refinement on:\n\n");
  LeakOptions Refined;
  Refined.ModelDestructiveUpdates = true;
  const Program &P = Checker->program();
  AnalysisRequest TopReq;
  TopReq.Loops =
      LoopSet::of({P.Strings.text(P.Loops[Ranked.front().Loop].Label)});
  TopReq.Options = SessionOptionsBuilder().fromLegacy(Refined).build().value();
  LeakAnalysisResult Report =
      std::move(Checker->run(TopReq).Results.front());
  std::printf("%s", renderLeakReport(Checker->program(), Report).c_str());
  std::printf("\n(the overwritten 'current' slot is gone; the audit-log "
              "append remains)\n");
  return 0;
}
