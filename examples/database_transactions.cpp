//===-- database_transactions.cpp - client-loop checking of a server --------===//
//
// The Derby usage pattern from the paper: to find leaks in a database
// system you do not need to understand it -- write a tiny client loop that
// runs one query per iteration and hand that loop to LeakChecker. This
// example also shows option ablation on the same substrate: pivot mode
// on/off and the library flows-in rule on/off, printing how the report
// changes.
//
// Build & run:  ./build/examples/database_transactions
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "subjects/Scoring.h"
#include "subjects/Subjects.h"

#include <cstdio>

using namespace lc;
using namespace lc::subjects;

int main() {
  const Subject &S = byName("Derby");

  DiagnosticEngine Diags;
  auto Checker = LeakChecker::fromSource(S.Source, Diags, S.Options);
  if (!Checker) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  // Per-request options ride on the request; the expensive substrate is
  // shared across all three runs.
  auto RunWith = [&](const LeakOptions &O) {
    AnalysisRequest R;
    R.Loops = LoopSet::of({S.LoopLabel});
    R.Options = SessionOptionsBuilder().fromLegacy(O).build().value();
    return std::move(Checker->run(R).Results.front());
  };

  std::printf("=== default options (pivot on, library rule on) ===\n");
  LeakAnalysisResult Default = RunWith(S.Options);
  std::printf("%s\n", renderLeakReport(Checker->program(), Default).c_str());
  std::printf("score: %s\n\n",
              renderScore(score(Checker->program(), Default)).c_str());

  LeakOptions NoPivot = S.Options;
  NoPivot.PivotMode = false;
  LeakAnalysisResult R1 = RunWith(NoPivot);
  std::printf("=== pivot mode off: %zu reports (default had %zu) ===\n",
              R1.Reports.size(), Default.Reports.size());

  LeakOptions NoLibRule = S.Options;
  NoLibRule.LibraryRule = false;
  LeakAnalysisResult R2 = RunWith(NoLibRule);
  std::printf("=== library rule off: %zu reports -- container-internal "
              "reads masquerade as retrievals ===\n",
              R2.Reports.size());
  return 0;
}
