//===-- quickstart.cpp - LeakChecker in 60 lines ----------------------------===//
//
// The paper's Figure 1 example end-to-end: compile the MJ program, point
// LeakChecker at the transaction loop, print the report. The Order objects
// escape each iteration into a Customer's order array and are never read
// back -- the redundant reference LeakChecker blames. The Transaction.curr
// edge, which IS read back by display(), is correctly not reported.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"

#include <cstdio>

using namespace lc;

static const char *Figure1 = R"(
  class Order { int custId; Order(int id) { this.custId = id; } }

  class Customer {
    Order[] orders = new Order[16];
    int n;
    void addOrder(Order y) {
      Order[] arr = this.orders;
      arr[this.n] = y;        // the redundant reference: never read again
      this.n = this.n + 1;
    }
  }

  class Transaction {
    Customer[] customers = new Customer[4];
    Order curr;
    Transaction() {
      int i = 0;
      while (i < 4) {
        this.customers[i] = new Customer();
        i = i + 1;
      }
    }
    void process(Order p) {
      this.curr = p;          // read back by display(): properly shared
      Customer c = this.customers[p.custId];
      c.addOrder(p);
    }
    void display() {
      Order o = this.curr;
      if (o != null) { this.curr = null; }
    }
  }

  class Main {
    static void main() {
      Transaction t = new Transaction();
      int i = 0;
      main: while (i < 100) {
        t.display();
        Order order = new Order(i - (i / 4) * 4);
        t.process(order);
        i = i + 1;
      }
    }
  }
)";

int main() {
  DiagnosticEngine Diags;
  auto Checker = LeakChecker::fromSource(Figure1, Diags);
  if (!Checker) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  AnalysisRequest Request;
  Request.Loops = LoopSet::of({"main"});
  AnalysisOutcome Outcome = Checker->run(Request);
  if (Outcome.Status == OutcomeStatus::LoopNotFound) {
    std::fprintf(stderr, "no loop labeled 'main'\n");
    return 1;
  }

  const LeakAnalysisResult &Result = Outcome.Results.front();
  std::printf("%s\n", renderLeakReport(Checker->program(), Result).c_str());
  std::printf("reachable methods: %zu, statements: %zu\n",
              Checker->reachableMethods(), Checker->reachableStmts());
  return Result.Reports.empty() ? 1 : 0;
}
