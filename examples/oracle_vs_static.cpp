//===-- oracle_vs_static.cpp - Definition 1 oracle vs the static tool -------===//
//
// Runs the same program through both halves of the reproduction:
//
//   1. the concrete interpreter (the paper's Fig. 3 semantics), applying
//      Definition 1 to the recorded heap effects -- the dynamic oracle;
//   2. the static LeakChecker analysis.
//
// and prints both verdicts side by side. This is the measurement loop the
// property tests automate over random programs.
//
// Build & run:  ./build/examples/oracle_vs_static
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "frontend/Lower.h"
#include "interp/Interp.h"

#include <cstdio>

using namespace lc;

static const char *Source = R"(
  class Cache { Entry[] slots = new Entry[64]; int n; Entry hot; }
  class Entry { int key; }
  class Main {
    static void main() {
      Cache cache = new Cache();
      int i = 0;
      fill: while (i < 20) {
        Entry hot = cache.hot;        // last iteration's entry: flows back
        Entry e = new Entry();
        e.key = i;
        cache.hot = e;                // properly shared across iterations
        Entry shadow = new Entry();
        shadow.key = i * 2;
        cache.slots[cache.n] = shadow; // appended, never read: the leak
        cache.n = cache.n + 1;
        i = i + 1;
      }
    }
  }
)";

int main() {
  // --- dynamic oracle -------------------------------------------------------
  Program P;
  DiagnosticEngine Diags;
  if (!compileSource(Source, P, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  InterpOptions IOpts;
  IOpts.TrackedLoop = P.findLoop("fill");
  InterpResult R = interpret(P, IOpts);
  if (!R.ok()) {
    std::fprintf(stderr, "trap: %s\n", R.TrapMessage.c_str());
    return 1;
  }
  DynamicLeakReport D = detectDynamicLeaks(R);
  std::printf("dynamic oracle: %zu steps, %llu iterations, %zu objects, "
              "%zu leaking instances\n",
              static_cast<size_t>(R.Steps),
              static_cast<unsigned long long>(R.TrackedIters),
              R.Heap.size(), D.Objects.size());
  for (AllocSiteId S : D.Sites)
    std::printf("  dynamically leaking site: %s\n",
                P.allocSiteName(S).c_str());

  // --- static analysis ------------------------------------------------------
  DiagnosticEngine Diags2;
  auto Checker = LeakChecker::fromSource(Source, Diags2);
  AnalysisRequest Req;
  Req.Loops = LoopSet::of({"fill"});
  LeakAnalysisResult Result =
      std::move(Checker->run(Req).Results.front());
  std::printf("\n%s\n", renderLeakReport(Checker->program(), Result).c_str());

  // Agreement summary.
  for (AllocSiteId S : D.Sites) {
    if (P.AllocSites[S].Ty == kInvalidId)
      continue;
    bool Reported = Result.reportsSite(S);
    std::printf("site %-40s dynamic=LEAK static=%s\n",
                P.allocSiteName(S).c_str(), Reported ? "LEAK" : "ok");
  }
  return 0;
}
