//===-- eclipse_plugin.cpp - checkable regions for component code -----------===//
//
// Demonstrates the paper's second usage mode: the developer of a component
// (an Eclipse plugin) does not control the event loop that invokes it, so
// instead of naming a loop they mark the plugin entry point as a checkable
// *region* -- an artificial loop. LeakChecker then finds objects that
// escape one activation of the region and are never used by a later one.
//
// This drives the EclipseDiff subject model: the platform's editor History
// accumulates a HistoryEntry per comparison (the real Eclipse bug took
// almost a year to root-cause); three GUI temporaries come back as
// immediately-excludable false positives.
//
// Build & run:  ./build/examples/eclipse_plugin
//
//===----------------------------------------------------------------------===//

#include "core/LeakChecker.h"
#include "subjects/Scoring.h"
#include "subjects/Subjects.h"

#include <cstdio>

using namespace lc;
using namespace lc::subjects;

int main() {
  const Subject &S = byName("EclipseDiff");

  DiagnosticEngine Diags;
  auto Checker = LeakChecker::fromSource(S.Source, Diags, S.Options);
  if (!Checker) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("Checking region \"%s\" (the plugin's runCompare entry "
              "point)...\n\n",
              S.LoopLabel.c_str());
  AnalysisRequest Request;
  Request.Loops = LoopSet::of({S.LoopLabel});
  AnalysisOutcome Outcome = Checker->run(Request);
  if (!Outcome.ok())
    return 1;
  const LeakAnalysisResult &Result = Outcome.Results.front();

  std::printf("%s\n", renderLeakReport(Checker->program(), Result).c_str());

  Score Sc = score(Checker->program(), Result);
  std::printf("scored against ground truth: %s\n", renderScore(Sc).c_str());
  std::printf("\nTriage hint: reports whose outside holder is a GUI slot "
              "overwritten per\nactivation are the documented false "
              "positives; the History list is the bug.\n");
  return 0;
}
